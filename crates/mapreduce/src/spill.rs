//! On-disk sorted runs: the out-of-core half of the shuffle.
//!
//! When a map task's sort buffer exceeds `spill_threshold_bytes`, each
//! non-empty partition buffer is sorted, combined, and appended to the
//! task's spill file as one *run*. A run is a sequence of length-prefixed,
//! checksummed frames (reusing [`lash_encoding::frame`]); each frame wraps a
//! chunk of whole shuffle records, so the reduce side streams a run one
//! chunk at a time — memory per open run is bounded by
//! [`SPILL_CHUNK_BYTES`] plus one record, regardless of run size.
//!
//! ```text
//! spill file (one per map task attempt)
//! ├── run 0   ┌ frame ┐┌ frame ┐…        ← partition 3, spill 0
//! ├── run 1   ┌ frame ┐…                 ← partition 7, spill 0
//! ├── run 2   ┌ frame ┐┌ frame ┐…        ← partition 3, spill 1
//! └── …
//! ```
//!
//! Truncation and bit-flips surface as [`EngineError::CorruptShuffle`], not
//! panics: a frame is only handed to the record parser after its checksum
//! verifies, and a run that ends mid-frame is reported as truncated.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lash_encoding::frame;

use crate::error::EngineError;
use crate::shuffle::RunBuffer;

/// Target payload size of one spill frame (the workspace-wide
/// [`frame::DEFAULT_BLOCK_BYTES`]). Chunks always contain at least one
/// whole record, so oversized records still spill correctly.
pub const SPILL_CHUNK_BYTES: usize = frame::DEFAULT_BLOCK_BYTES;

/// Maps an I/O error to an [`EngineError::SpillIo`] with context.
fn io_err(what: &str, e: std::io::Error) -> EngineError {
    EngineError::SpillIo(format!("{what}: {e}"))
}

/// The per-job spill directory: a unique subdirectory of the configured (or
/// system) temp dir, removed when the job finishes.
#[derive(Debug)]
pub struct SpillSpace {
    dir: PathBuf,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillSpace {
    /// Creates a unique spill directory under `base`.
    pub fn create(base: Option<&Path>) -> Result<SpillSpace, EngineError> {
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "lash-shuffle-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create spill dir", e))?;
        Ok(SpillSpace { dir })
    }

    /// The spill file path of one map task attempt.
    pub fn task_file(&self, task: usize, attempt: u32) -> PathBuf {
        self.dir.join(format!("map-{task:05}-a{attempt}.run"))
    }

    /// The file path of one intermediate merge output: reduce task `task`,
    /// hierarchical merge round `round`, run group `group`.
    pub fn merge_file(&self, task: usize, round: u32, group: usize) -> PathBuf {
        self.dir
            .join(format!("reduce-{task:05}-r{round}-g{group}.merge"))
    }
}

impl Drop for SpillSpace {
    fn drop(&mut self) {
        // Best effort: a leaked temp dir is not worth failing a job over.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Location and size of one sorted run inside a spill file.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The reduce partition the run belongs to.
    pub partition: u32,
    /// Byte offset of the run's first frame in the file.
    pub offset: u64,
    /// Total encoded bytes of the run's frames.
    pub len: u64,
    /// Records in the run.
    pub records: u64,
}

/// Appends sorted runs to one map task's spill file.
#[derive(Debug)]
pub struct SpillWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    pos: u64,
}

impl SpillWriter {
    /// Creates (truncating) the spill file at `path`.
    pub fn create(path: PathBuf) -> Result<SpillWriter, EngineError> {
        let file = File::create(&path).map_err(|e| io_err("create spill file", e))?;
        Ok(SpillWriter {
            path,
            writer: BufWriter::new(file),
            pos: 0,
        })
    }

    /// The spill file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one sorted run: the records of `buffer` in reference order,
    /// chunked into checksummed frames.
    pub fn write_run(
        &mut self,
        partition: u32,
        buffer: &RunBuffer,
    ) -> Result<RunMeta, EngineError> {
        debug_assert!(!buffer.is_empty(), "runs are never empty");
        let offset = self.pos;
        let mut chunk: Vec<u8> = Vec::with_capacity(SPILL_CHUNK_BYTES.min(buffer.data.len() + 64));
        let mut written = 0u64;
        for rec in &buffer.recs {
            if !chunk.is_empty() && chunk.len() + buffer.framed(rec).len() > SPILL_CHUNK_BYTES {
                written += self.flush_chunk(&chunk)?;
                chunk.clear();
            }
            chunk.extend_from_slice(buffer.framed(rec));
        }
        if !chunk.is_empty() {
            written += self.flush_chunk(&chunk)?;
        }
        self.pos += written;
        Ok(RunMeta {
            partition,
            offset,
            len: written,
            records: buffer.len() as u64,
        })
    }

    fn flush_chunk(&mut self, chunk: &[u8]) -> Result<u64, EngineError> {
        frame::write_frame(chunk, &mut self.writer).map_err(|e| io_err("write spill frame", e))?;
        Ok(frame::encoded_frame_len(chunk.len()) as u64)
    }

    /// Flushes buffered bytes to the OS so reduce tasks can read them back.
    pub fn finish(mut self) -> Result<PathBuf, EngineError> {
        self.writer
            .flush()
            .map_err(|e| io_err("flush spill file", e))?;
        Ok(self.path)
    }
}

/// Streams one sorted run into its own file, record by record — the
/// output side of a hierarchical merge pass, where the run being written
/// is itself the merge of many runs and must never be materialized in
/// memory. Chunking and framing match [`SpillWriter::write_run`], so the
/// result reads back through the same [`DiskCursor`].
#[derive(Debug)]
pub struct RunStreamWriter {
    writer: BufWriter<File>,
    chunk: Vec<u8>,
    scratch: Vec<u8>,
    written: u64,
    records: u64,
}

impl RunStreamWriter {
    /// Creates (truncating) the run file at `path`.
    pub fn create(path: &Path) -> Result<RunStreamWriter, EngineError> {
        let file = File::create(path).map_err(|e| io_err("create merge run file", e))?;
        Ok(RunStreamWriter {
            writer: BufWriter::new(file),
            chunk: Vec::with_capacity(SPILL_CHUNK_BYTES + 64),
            scratch: Vec::new(),
            written: 0,
            records: 0,
        })
    }

    /// Appends one record. Records must arrive in run order (the caller is
    /// a merge, so they do by construction).
    pub fn push(&mut self, key: &[u8], value: &[u8]) -> Result<(), EngineError> {
        self.scratch.clear();
        crate::shuffle::write_record(&mut self.scratch, key, value);
        if !self.chunk.is_empty() && self.chunk.len() + self.scratch.len() > SPILL_CHUNK_BYTES {
            self.flush_chunk()?;
        }
        self.chunk.extend_from_slice(&self.scratch);
        self.records += 1;
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), EngineError> {
        frame::write_frame(&self.chunk, &mut self.writer)
            .map_err(|e| io_err("write merge run frame", e))?;
        self.written += frame::encoded_frame_len(self.chunk.len()) as u64;
        self.chunk.clear();
        Ok(())
    }

    /// Flushes the run and returns its metadata (the run starts at offset 0
    /// of its dedicated file; `partition` is recorded for bookkeeping).
    pub fn finish(mut self, partition: u32) -> Result<RunMeta, EngineError> {
        if !self.chunk.is_empty() {
            self.flush_chunk()?;
        }
        self.writer
            .flush()
            .map_err(|e| io_err("flush merge run file", e))?;
        Ok(RunMeta {
            partition,
            offset: 0,
            len: self.written,
            records: self.records,
        })
    }
}

/// One spill file opened for reading, shared by every run cursor over it.
///
/// A job can hold *many* runs per spill file (with a tiny threshold, one
/// run per record), so cursors must not each own a file descriptor — the
/// merge would exhaust the process fd limit. Instead all cursors of a file
/// share one handle and read at explicit positions under a lock; each
/// cursor buffers its reads, so lock traffic is per chunk, not per byte.
#[derive(Debug, Clone)]
pub struct SharedFile(Arc<Mutex<File>>);

impl SharedFile {
    /// Opens `path` read-only.
    pub fn open(path: &Path) -> Result<SharedFile, EngineError> {
        let file = File::open(path).map_err(|e| io_err("open spill file", e))?;
        Ok(SharedFile(Arc::new(Mutex::new(file))))
    }

    /// Reads up to `buf.len()` bytes at absolute position `pos`.
    fn read_at(&self, buf: &mut [u8], pos: u64) -> std::io::Result<usize> {
        let mut file = self.0.lock().expect("spill file lock");
        file.seek(SeekFrom::Start(pos))?;
        file.read(buf)
    }
}

/// A [`Read`] view of a [`SharedFile`] starting at a fixed position; each
/// reader tracks its own offset, so concurrent cursors never disturb each
/// other.
#[derive(Debug)]
struct SharedReader {
    file: SharedFile,
    pos: u64,
}

impl Read for SharedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.file.read_at(buf, self.pos)?;
        self.pos += n as u64;
        Ok(n)
    }
}

/// A streaming cursor over one on-disk run: reads one checksum-verified
/// frame at a time and iterates the records inside it.
#[derive(Debug)]
pub struct DiskCursor {
    reader: BufReader<SharedReader>,
    /// Encoded bytes of the run not yet consumed from the file.
    remaining: u64,
    /// The current chunk, already verified, parsed into records.
    chunk: RunBuffer,
    /// Index of the current record within `chunk`.
    rec: usize,
}

impl DiskCursor {
    /// Opens the run described by `meta` inside `file`, positioned on its
    /// first record. Runs are never empty, so an immediately exhausted run
    /// is corruption.
    pub fn open(file: &SharedFile, meta: &RunMeta) -> Result<DiskCursor, EngineError> {
        let reader = BufReader::new(SharedReader {
            file: file.clone(),
            pos: meta.offset,
        });
        let mut cursor = DiskCursor {
            reader,
            remaining: meta.len,
            chunk: RunBuffer::default(),
            rec: 0,
        };
        if !cursor.next_chunk()? {
            return Err(EngineError::CorruptShuffle("run has no frames".into()));
        }
        Ok(cursor)
    }

    /// Loads the next frame of the run. Returns false when the run is fully
    /// consumed.
    fn next_chunk(&mut self) -> Result<bool, EngineError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let payload = match frame::read_frame(&mut self.reader) {
            Ok(frame::FrameRead::Payload(p)) => p,
            Ok(frame::FrameRead::Eof) => {
                return Err(EngineError::CorruptShuffle(
                    "spill file truncated: run ends before its recorded length".into(),
                ))
            }
            Err(e) => {
                return Err(EngineError::CorruptShuffle(format!("spill frame: {e}")));
            }
        };
        let encoded = frame::encoded_frame_len(payload.len()) as u64;
        if encoded > self.remaining {
            return Err(EngineError::CorruptShuffle(
                "spill frame overruns its run".into(),
            ));
        }
        self.remaining -= encoded;
        self.chunk = RunBuffer::parse(payload)?;
        if self.chunk.is_empty() {
            return Err(EngineError::CorruptShuffle("empty spill frame".into()));
        }
        self.rec = 0;
        Ok(true)
    }

    /// The current record's key bytes.
    pub fn key(&self) -> &[u8] {
        self.chunk.key(&self.chunk.recs[self.rec])
    }

    /// The current record's value bytes.
    pub fn value(&self) -> &[u8] {
        self.chunk.value(&self.chunk.recs[self.rec])
    }

    /// Advances to the next record; false when the run is exhausted.
    pub fn advance(&mut self) -> Result<bool, EngineError> {
        self.rec += 1;
        if self.rec < self.chunk.recs.len() {
            return Ok(true);
        }
        self.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Records = Vec<(Vec<u8>, Vec<u8>)>;

    fn build_run(pairs: &[(&[u8], &[u8])]) -> RunBuffer {
        let mut run = RunBuffer::default();
        for (k, v) in pairs {
            run.push(k, v);
        }
        run.sort();
        run
    }

    fn drain(file: &Path, meta: &RunMeta) -> Result<Records, EngineError> {
        let mut cursor = DiskCursor::open(&SharedFile::open(file)?, meta)?;
        let mut out = Vec::new();
        loop {
            out.push((cursor.key().to_vec(), cursor.value().to_vec()));
            if !cursor.advance()? {
                return Ok(out);
            }
        }
    }

    #[test]
    fn runs_round_trip_through_disk() {
        let space = SpillSpace::create(None).unwrap();
        let mut writer = SpillWriter::create(space.task_file(0, 0)).unwrap();
        let a = build_run(&[(b"b", b"1"), (b"a", b"2"), (b"b", b"3")]);
        let b = build_run(&[(b"z", b"9")]);
        let ma = writer.write_run(3, &a).unwrap();
        let mb = writer.write_run(5, &b).unwrap();
        let file = writer.finish().unwrap();
        assert_eq!(ma.records, 3);
        assert_eq!(mb.offset, ma.offset + ma.len);
        assert_eq!(
            drain(&file, &ma).unwrap(),
            vec![
                (b"a".to_vec(), b"2".to_vec()),
                (b"b".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"3".to_vec()),
            ]
        );
        assert_eq!(
            drain(&file, &mb).unwrap(),
            vec![(b"z".to_vec(), b"9".to_vec())]
        );
    }

    #[test]
    fn large_runs_split_into_multiple_frames() {
        let space = SpillSpace::create(None).unwrap();
        let mut writer = SpillWriter::create(space.task_file(1, 0)).unwrap();
        let big_value = vec![0xabu8; 40 * 1024];
        let mut run = RunBuffer::default();
        for i in 0..8u8 {
            run.push(&[i], &big_value);
        }
        run.sort();
        let meta = writer.write_run(0, &run).unwrap();
        let file = writer.finish().unwrap();
        // 8 × 40 KiB cannot fit one 64 KiB chunk.
        assert!(meta.len > frame::encoded_frame_len(SPILL_CHUNK_BYTES) as u64);
        let drained = drain(&file, &meta).unwrap();
        assert_eq!(drained.len(), 8);
        assert!(drained.iter().all(|(_, v)| v == &big_value));
    }

    #[test]
    fn streamed_runs_read_back_like_buffered_ones() {
        let space = SpillSpace::create(None).unwrap();
        let path = space.merge_file(0, 0, 0);
        let mut writer = RunStreamWriter::create(&path).unwrap();
        let big_value = vec![0x5au8; 30 * 1024];
        // Records in run order, large enough to span several chunks.
        let mut expect: Records = Vec::new();
        for i in 0..6u8 {
            let key = vec![i];
            writer.push(&key, &big_value).unwrap();
            expect.push((key, big_value.clone()));
        }
        let meta = writer.finish(3).unwrap();
        assert_eq!(meta.partition, 3);
        assert_eq!(meta.records, 6);
        assert_eq!(meta.offset, 0);
        assert!(meta.len > frame::encoded_frame_len(SPILL_CHUNK_BYTES) as u64);
        assert_eq!(drain(&path, &meta).unwrap(), expect);
    }

    #[test]
    fn truncated_run_is_corrupt_shuffle_not_a_panic() {
        let space = SpillSpace::create(None).unwrap();
        let mut writer = SpillWriter::create(space.task_file(2, 0)).unwrap();
        let run = build_run(&[(b"key", b"a value with some length"), (b"key2", b"x")]);
        let meta = writer.write_run(0, &run).unwrap();
        let file = writer.finish().unwrap();
        let full = std::fs::read(&file).unwrap();
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            std::fs::write(&file, &full[..cut]).unwrap();
            let result = drain(&file, &meta);
            assert!(
                matches!(result, Err(EngineError::CorruptShuffle(_))),
                "cut at {cut}: {result:?}"
            );
        }
    }

    #[test]
    fn bit_flip_is_corrupt_shuffle() {
        let space = SpillSpace::create(None).unwrap();
        let mut writer = SpillWriter::create(space.task_file(3, 0)).unwrap();
        let run = build_run(&[(b"key", b"payload")]);
        let meta = writer.write_run(0, &run).unwrap();
        let file = writer.finish().unwrap();
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&file, &bytes).unwrap();
        assert!(matches!(
            drain(&file, &meta),
            Err(EngineError::CorruptShuffle(_))
        ));
    }

    #[test]
    fn spill_space_cleans_up_on_drop() {
        let dir;
        {
            let space = SpillSpace::create(None).unwrap();
            dir = space.dir.clone();
            std::fs::write(space.task_file(0, 0), b"junk").unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
