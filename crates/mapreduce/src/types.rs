//! The [`Job`] trait: the typed map/combine/reduce contract plus the codec
//! that defines the wire format of the shuffle.

use std::collections::BTreeMap;

/// A MapReduce job.
///
/// Keys must serialize injectively through [`Job::encode_key`]: the engine
/// partitions and groups by *encoded* key bytes, exactly as Hadoop partitions
/// on serialized keys.
pub trait Job: Send + Sync {
    /// One input record (map tasks receive contiguous slices of records).
    type Input: Send + Sync;
    /// Intermediate key.
    type Key: Send + Ord + Clone;
    /// Intermediate value.
    type Value: Send;
    /// Final output record.
    type Output: Send;

    /// Maps one input record to zero or more key/value pairs.
    fn map(&self, input: &Self::Input, emit: &mut Emitter<'_, Self::Key, Self::Value>);

    /// Optional map-side pre-aggregation: reduces the values of one key to a
    /// smaller list. Default: identity (no combiner).
    fn combine(&self, _key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        values
    }

    /// Reduces the complete value list of one key.
    fn reduce(&self, key: Self::Key, values: Vec<Self::Value>, out: &mut Vec<Self::Output>);

    /// Serializes a key (must be injective).
    fn encode_key(&self, key: &Self::Key, buf: &mut Vec<u8>);
    /// Inverse of [`Job::encode_key`].
    fn decode_key(&self, bytes: &[u8]) -> Self::Key;
    /// Serializes a value.
    fn encode_value(&self, value: &Self::Value, buf: &mut Vec<u8>);
    /// Inverse of [`Job::encode_value`].
    fn decode_value(&self, bytes: &[u8]) -> Self::Value;
}

/// The map-side output collector: an in-memory buffer grouped by key, exactly
/// like Hadoop's map-side sort buffer.
pub struct Emitter<'a, K: Ord, V> {
    pub(crate) buffer: &'a mut BTreeMap<K, Vec<V>>,
    pub(crate) records: &'a mut u64,
}

impl<K: Ord, V> Emitter<'_, K, V> {
    /// Emits one key/value pair.
    pub fn emit(&mut self, key: K, value: V) {
        *self.records += 1;
        self.buffer.entry(key).or_default().push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_groups_by_key() {
        let mut buffer = BTreeMap::new();
        let mut records = 0u64;
        let mut e = Emitter {
            buffer: &mut buffer,
            records: &mut records,
        };
        e.emit("b", 1);
        e.emit("a", 2);
        e.emit("b", 3);
        assert_eq!(records, 3);
        assert_eq!(buffer.get("b"), Some(&vec![1, 3]));
        assert_eq!(buffer.get("a"), Some(&vec![2]));
        // BTreeMap keeps keys sorted, like the map-side sort buffer.
        let keys: Vec<_> = buffer.keys().copied().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
