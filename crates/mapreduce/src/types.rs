//! The [`Job`] trait — the typed map/combine/reduce contract plus the codec
//! that defines the wire format of the shuffle — and the [`Emitter`], the
//! map-side sort buffer that serializes, sorts, combines, and (when the
//! engine runs out-of-core) spills map output.

use std::path::PathBuf;

use crate::counters::Counters;
use crate::error::EngineError;
use crate::shuffle::{partition_of, RunBuffer};
use crate::spill::{RunMeta, SpillCodec, SpillWriter};

/// A MapReduce job.
///
/// Keys must serialize injectively through [`Job::encode_key`]: the engine
/// partitions and groups by *encoded* key bytes, exactly as Hadoop partitions
/// on serialized keys.
///
/// [`Job::reduce`] receives its values as a **streaming iterator**: values
/// are decoded one at a time off the shuffle merge, so a reducer never
/// requires the whole group in memory. A reducer that needs random access
/// can still `collect()` — it then pays exactly the footprint the old
/// `Vec`-based contract always paid.
pub trait Job: Send + Sync {
    /// One input record (map tasks receive contiguous slices of records).
    type Input: Send + Sync;
    /// Intermediate key.
    type Key: Send;
    /// Intermediate value.
    type Value: Send;
    /// Final output record.
    type Output: Send;

    /// Maps one input record to zero or more key/value pairs.
    fn map(&self, input: &Self::Input, emit: &mut Emitter<'_, Self>)
    where
        Self: Sized;

    /// Optional map-side pre-aggregation: reduces the values of one key to a
    /// smaller list. Default: identity (no combiner).
    ///
    /// With spilling enabled the combiner runs once per *spill* rather than
    /// once per map task, so it may see a subset of a key's task-local
    /// values at a time — combiners must therefore be associative and
    /// insensitive to such regrouping (the same contract Hadoop imposes).
    fn combine(&self, _key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        values
    }

    /// Reduces the complete value stream of one key.
    fn reduce(
        &self,
        key: Self::Key,
        values: impl Iterator<Item = Self::Value>,
        out: &mut Vec<Self::Output>,
    ) where
        Self: Sized;

    /// Serializes a key (must be injective).
    fn encode_key(&self, key: &Self::Key, buf: &mut Vec<u8>);
    /// Inverse of [`Job::encode_key`].
    fn decode_key(&self, bytes: &[u8]) -> Self::Key;
    /// Serializes a value.
    fn encode_value(&self, value: &Self::Value, buf: &mut Vec<u8>);
    /// Inverse of [`Job::encode_value`].
    fn decode_value(&self, bytes: &[u8]) -> Self::Value;
}

/// What a finished map task hands to the shuffle: either its sorted
/// partition buffers in memory, or the spill file holding its sorted runs.
#[derive(Debug)]
pub(crate) enum MapTaskOutput {
    /// One sorted (and combined) run per reduce partition, in memory.
    Mem(Vec<RunBuffer>),
    /// Every record was spilled; `runs` lists the file's sorted runs in
    /// spill order.
    Spilled {
        /// The task's spill file.
        file: PathBuf,
        /// Runs in (spill event, partition) order.
        runs: Vec<RunMeta>,
    },
}

/// The map-side output collector: serializes each emitted pair through the
/// job's codec into per-partition sort buffers (Hadoop's map-side sort
/// buffer), spilling sorted runs to disk whenever the configured threshold
/// is exceeded.
pub struct Emitter<'a, J: Job> {
    job: &'a J,
    num_parts: usize,
    use_combiner: bool,
    threshold: Option<usize>,
    /// Per-partition unsorted record buffers.
    parts: Vec<RunBuffer>,
    /// Serialized bytes currently buffered across all partitions.
    buffered: usize,
    /// Target spill file (set iff the threshold is set).
    spill_path: Option<PathBuf>,
    /// Chunk codec for spilled runs.
    spill_codec: SpillCodec,
    writer: Option<SpillWriter>,
    runs: Vec<RunMeta>,
    records: u64,
    counters: &'a Counters,
    kbuf: Vec<u8>,
    vbuf: Vec<u8>,
    /// First spill failure; emit becomes a no-op afterwards and the task
    /// reports the error when it finishes.
    error: Option<EngineError>,
    /// Map-side sort (and combine) latency, looked up once per task and
    /// recorded once per finalized partition buffer.
    sort_hist: lash_obs::Histogram,
    /// Spill latency (sort + combine + run writes), recorded once per
    /// spill event. A histogram rather than per-spill span events: with a
    /// forced threshold of 0 every record spills, and the event pipeline
    /// must not run per record.
    spill_hist: lash_obs::Histogram,
    /// The trace context of the enclosing map-task span, captured at
    /// construction (on the worker thread) and attached to the one
    /// `spill_summary` event a spilled task emits when it finishes.
    trace: Option<lash_obs::trace::TraceCtx>,
    /// Spill events and bytes of *this* task, for the summary event
    /// (the shared `Counters` aggregate across tasks).
    spill_events: u64,
    spill_bytes: u64,
}

impl<'a, J: Job> Emitter<'a, J> {
    pub(crate) fn new(
        job: &'a J,
        num_parts: usize,
        use_combiner: bool,
        threshold: Option<usize>,
        spill_path: Option<PathBuf>,
        spill_codec: SpillCodec,
        counters: &'a Counters,
    ) -> Self {
        debug_assert!(
            threshold.is_none() || spill_path.is_some(),
            "a spill threshold requires a spill file"
        );
        Emitter {
            job,
            num_parts,
            use_combiner,
            threshold,
            parts: (0..num_parts).map(|_| RunBuffer::default()).collect(),
            buffered: 0,
            spill_path,
            spill_codec,
            writer: None,
            runs: Vec::new(),
            records: 0,
            counters,
            kbuf: Vec::new(),
            vbuf: Vec::new(),
            error: None,
            sort_hist: lash_obs::global().histogram("mapreduce.sort_us"),
            spill_hist: lash_obs::global().histogram("mapreduce.spill_us"),
            trace: lash_obs::trace::current(),
            spill_events: 0,
            spill_bytes: 0,
        }
    }

    /// Emits one key/value pair.
    pub fn emit(&mut self, key: J::Key, value: J::Value) {
        if self.error.is_some() {
            return;
        }
        self.records += 1;
        self.kbuf.clear();
        self.job.encode_key(&key, &mut self.kbuf);
        self.vbuf.clear();
        self.job.encode_value(&value, &mut self.vbuf);
        let part = partition_of(&self.kbuf, self.num_parts);
        let (_, materialized) = self.parts[part].push(&self.kbuf, &self.vbuf);
        self.buffered += materialized as usize;
        Counters::raise(&self.counters.peak_resident_bytes, self.buffered as u64);
        if self.threshold.is_some_and(|t| self.buffered > t) {
            if let Err(e) = self.spill() {
                self.error = Some(e);
            }
        }
    }

    /// Sorts, combines, and writes every non-empty partition buffer as one
    /// run in the task's spill file, then resets the buffers.
    fn spill(&mut self) -> Result<(), EngineError> {
        let spill_started = std::time::Instant::now();
        if self.writer.is_none() {
            let path = self
                .spill_path
                .clone()
                .expect("spill threshold requires a spill file");
            self.writer = Some(SpillWriter::create(path, self.spill_codec)?);
        }
        for part in 0..self.num_parts {
            if self.parts[part].is_empty() {
                continue;
            }
            let run = self.finalize_partition(part);
            let writer = self.writer.as_mut().expect("writer created above");
            let meta = writer.write_run(part as u32, &run)?;
            Counters::add(&self.counters.spilled_bytes, meta.len);
            Counters::add(&self.counters.spilled_runs, 1);
            self.spill_bytes += meta.len;
            self.runs.push(meta);
        }
        self.buffered = 0;
        self.spill_events += 1;
        self.spill_hist.record_duration(spill_started.elapsed());
        Ok(())
    }

    /// Takes one partition buffer, sorts it, applies the combiner, and
    /// accounts the shipped bytes.
    fn finalize_partition(&mut self, part: usize) -> RunBuffer {
        let sort_started = std::time::Instant::now();
        let mut buf = std::mem::take(&mut self.parts[part]);
        buf.sort();
        let run = if self.use_combiner && !buf.is_empty() {
            self.combine_sorted(buf)
        } else {
            buf
        };
        self.sort_hist.record_duration(sort_started.elapsed());
        let mut payload = 0u64;
        for r in &run.recs {
            payload += (r.key.1 - r.key.0) as u64 + (r.value.1 - r.value.0) as u64;
        }
        Counters::add(&self.counters.map_output_bytes, payload);
        Counters::add(
            &self.counters.map_output_materialized_bytes,
            run.data.len() as u64,
        );
        run
    }

    /// Runs the combiner over each key group of a sorted buffer, rebuilding
    /// a (still sorted) buffer from the combined values.
    fn combine_sorted(&mut self, buf: RunBuffer) -> RunBuffer {
        let mut out = RunBuffer::default();
        let mut combine_in = 0u64;
        let mut combine_out = 0u64;
        let mut i = 0;
        while i < buf.recs.len() {
            let key_bytes = buf.key(&buf.recs[i]);
            let mut j = i + 1;
            while j < buf.recs.len() && buf.key(&buf.recs[j]) == key_bytes {
                j += 1;
            }
            let key = self.job.decode_key(key_bytes);
            let values: Vec<J::Value> = buf.recs[i..j]
                .iter()
                .map(|r| self.job.decode_value(buf.value(r)))
                .collect();
            combine_in += (j - i) as u64;
            let combined = self.job.combine(&key, values);
            combine_out += combined.len() as u64;
            for value in combined {
                self.vbuf.clear();
                self.job.encode_value(&value, &mut self.vbuf);
                out.push(key_bytes, &self.vbuf);
            }
            i = j;
        }
        Counters::add(&self.counters.combine_input_records, combine_in);
        Counters::add(&self.counters.combine_output_records, combine_out);
        out
    }

    /// Finishes the map task: flushes a final spill if the task spilled
    /// before, otherwise finalizes the buffers in memory. Returns the task
    /// output and the number of raw emitted records.
    pub(crate) fn finish(mut self) -> Result<(MapTaskOutput, u64), EngineError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let records = self.records;
        if self.writer.is_some() {
            self.spill()?;
            let writer = self.writer.take().expect("spilled at least once");
            let file = writer.finish()?;
            let runs = std::mem::take(&mut self.runs);
            // One summary event per spilled task (not per spill — see
            // `spill_hist`), tied to the task's span via the captured
            // context.
            lash_obs::global().emit_event_with(
                self.trace,
                "spill_summary",
                "mapreduce.spill",
                &[
                    ("spills", self.spill_events.into()),
                    ("runs", runs.len().into()),
                    ("bytes", self.spill_bytes.into()),
                ],
            );
            Ok((MapTaskOutput::Spilled { file, runs }, records))
        } else {
            let parts: Vec<RunBuffer> = (0..self.num_parts)
                .map(|p| self.finalize_partition(p))
                .collect();
            Ok((MapTaskOutput::Mem(parts), records))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity codec over byte-string keys and u8 values.
    struct ByteJob;

    impl Job for ByteJob {
        type Input = ();
        type Key = Vec<u8>;
        type Value = u8;
        type Output = ();

        fn map(&self, _input: &(), _emit: &mut Emitter<'_, Self>) {}
        fn combine(&self, _key: &Vec<u8>, values: Vec<u8>) -> Vec<u8> {
            vec![values.iter().copied().fold(0u8, u8::wrapping_add)]
        }
        fn reduce(&self, _key: Vec<u8>, _values: impl Iterator<Item = u8>, _out: &mut Vec<()>) {}
        fn encode_key(&self, key: &Vec<u8>, buf: &mut Vec<u8>) {
            buf.extend_from_slice(key);
        }
        fn decode_key(&self, bytes: &[u8]) -> Vec<u8> {
            bytes.to_vec()
        }
        fn encode_value(&self, value: &u8, buf: &mut Vec<u8>) {
            buf.push(*value);
        }
        fn decode_value(&self, bytes: &[u8]) -> u8 {
            bytes[0]
        }
    }

    #[test]
    fn emitter_sorts_and_groups_in_memory() {
        let counters = Counters::default();
        let mut emitter = Emitter::new(&ByteJob, 1, false, None, None, SpillCodec::Raw, &counters);
        emitter.emit(b"b".to_vec(), 1);
        emitter.emit(b"a".to_vec(), 2);
        emitter.emit(b"b".to_vec(), 3);
        let (output, records) = emitter.finish().unwrap();
        assert_eq!(records, 3);
        let MapTaskOutput::Mem(parts) = output else {
            panic!("no threshold, no spill");
        };
        let run = &parts[0];
        let pairs: Vec<(Vec<u8>, u8)> = run
            .recs
            .iter()
            .map(|r| (run.key(r).to_vec(), run.value(r)[0]))
            .collect();
        // Sorted by key, emission order within equal keys.
        assert_eq!(
            pairs,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 1), (b"b".to_vec(), 3)]
        );
        assert!(counters.snapshot().map_output_bytes > 0);
        assert_eq!(counters.snapshot().spilled_bytes, 0);
    }

    #[test]
    fn emitter_combines_per_key_group() {
        let counters = Counters::default();
        let mut emitter = Emitter::new(&ByteJob, 1, true, None, None, SpillCodec::Raw, &counters);
        emitter.emit(b"k".to_vec(), 10);
        emitter.emit(b"k".to_vec(), 20);
        emitter.emit(b"other".to_vec(), 1);
        let (output, _) = emitter.finish().unwrap();
        let MapTaskOutput::Mem(parts) = output else {
            panic!("no threshold, no spill");
        };
        let run = &parts[0];
        assert_eq!(run.len(), 2);
        assert_eq!(run.value(&run.recs[0]), &[30]);
        let s = counters.snapshot();
        assert_eq!(s.combine_input_records, 3);
        assert_eq!(s.combine_output_records, 2);
    }

    #[test]
    fn zero_threshold_spills_every_record() {
        let counters = Counters::default();
        let space = crate::spill::SpillSpace::create(None).unwrap();
        let mut emitter = Emitter::new(
            &ByteJob,
            2,
            true,
            Some(0),
            Some(space.task_file(0, 0)),
            SpillCodec::GroupVarint,
            &counters,
        );
        for i in 0..5u8 {
            emitter.emit(vec![i], i);
        }
        let (output, records) = emitter.finish().unwrap();
        assert_eq!(records, 5);
        let MapTaskOutput::Spilled { runs, .. } = output else {
            panic!("threshold 0 must spill");
        };
        assert_eq!(runs.len(), 5);
        let s = counters.snapshot();
        assert_eq!(s.spilled_runs, 5);
        assert!(s.spilled_bytes > 0);
        assert!(s.peak_resident_bytes > 0);
    }
}
