//! # lash-mapreduce
//!
//! An in-process, multi-threaded MapReduce engine with Hadoop-like
//! semantics and an **external-sort shuffle**, built as the execution
//! substrate for LASH (the paper runs on a Hadoop cluster; this crate
//! reproduces the programming contract and the measured quantities on a
//! single machine — including the out-of-core behavior that makes low-σ
//! mining over larger-than-RAM corpora possible).
//!
//! ## Architecture
//!
//! ```text
//! map task                          shuffle               reduce task
//! ┌─────────────────────────┐                             ┌──────────────────┐
//! │ map() → Emitter          │      run lists per         │ k-way merge of   │
//! │  serialize → per-part    │      partition             │ the partition's  │
//! │  sort buffers            │  ┌──────────────────┐      │ runs             │
//! │  ├ sort + combine        │→ │ mem runs         │ ───→ │  │               │
//! │  └ over threshold?       │  │ disk runs (spill │      │  └ stream groups │
//! │     spill sorted run ────┼─→│ files)           │      │    reduce(key,   │
//! │     (checksummed frames) │  └──────────────────┘      │      values: impl│
//! └─────────────────────────┘                             │      Iterator)   │
//!                                                         └──────────────────┘
//! ```
//!
//! * **Map side.** Each emitted pair is serialized through the job's codec
//!   into one sort buffer per reduce partition. On finalize a buffer is
//!   stably sorted by key bytes and run through the combiner (Hadoop's
//!   map-side sort). With [`EngineConfig::spill_threshold_bytes`] set, a
//!   task whose buffers exceed the budget *spills*: every partition buffer
//!   is finalized and appended to the task's spill file as a sorted run of
//!   length-prefixed, checksummed frames (`lash-encoding`'s frame format),
//!   and mapping continues with empty buffers. `None` is the all-in-memory
//!   fast path; `Some(0)` spills after every record.
//! * **Reduce side.** Each reduce task k-way merges its partition's runs —
//!   in-memory buffers from unspilled tasks and streamed disk runs (one
//!   ~64 KiB chunk resident per open run) — and hands the reducer one
//!   *streamed* group at a time: [`Job::reduce`] receives
//!   `values: impl Iterator<Item = Value>` decoded lazily off the merge, so
//!   reduce memory no longer scales with partition size. Results are
//!   byte-identical between the two paths: the merge's (key bytes, run
//!   sequence) order reproduces the stable global sort exactly. A
//!   partition with more runs than [`EngineConfig::merge_fan_in`]
//!   (default 64, Hadoop's `io.sort.factor`) merges **hierarchically**:
//!   adjacent groups of at most `merge_fan_in` runs are pre-merged into
//!   intermediate on-disk runs (the `merge_passes` counter), and spill-file
//!   handles are opened per pass and closed between passes — so run count,
//!   not the fd limit or resident chunk memory, is the only thing that
//!   grows with the number of spilled map tasks.
//!
//! Further features:
//!
//! * typed [`Job`] trait with `map`, optional `combine`, and streaming
//!   `reduce`;
//! * real byte-level shuffle: counters like
//!   [`CounterSnapshot::map_output_bytes`] measure the representation a
//!   Hadoop job would ship, and the out-of-core counters
//!   ([`CounterSnapshot::spilled_bytes`], [`CounterSnapshot::spilled_runs`],
//!   [`CounterSnapshot::merged_runs`], [`CounterSnapshot::merge_passes`],
//!   [`CounterSnapshot::peak_resident_bytes`]) measure the spill traffic,
//!   the hierarchical merge work, and the map-side memory high-water mark;
//! * per-phase wall-clock timing (map / shuffle / reduce). With the
//!   external-sort design, sorting is part of `map_time`, merging part of
//!   `reduce_time`, and `shuffle_time` covers run-list assembly;
//! * configurable parallelism (worker threads stand in for cluster slots);
//! * deterministic failure injection with task retry, mirroring Hadoop's
//!   transparent fault tolerance — on the spill path each attempt writes its
//!   own run file, so retries never read a failed attempt's output;
//! * **compressed spills**: every spill chunk carries a codec tag;
//!   [`EngineConfig::spill_codec`] (or the `LASH_SPILL_CODEC` environment
//!   variable) selects [`SpillCodec::GroupVarint`], which front-codes the
//!   sorted keys and group-varint-compresses the length columns — same
//!   records, same outputs, fewer `spilled_bytes`;
//! * **merge-time combining**: hierarchical merge passes run the job's
//!   combiner on the groups they materialize (Hadoop's merge-side
//!   combiner), so repeated pre-merges shrink the data round over round —
//!   the `merged_combined_pairs` counter measures the eliminated pairs;
//! * the `LASH_SPILL_THRESHOLD` environment variable overrides the default
//!   spill threshold, letting a test run force the whole workspace through
//!   the out-of-core path (CI runs one leg with `LASH_SPILL_THRESHOLD=0`,
//!   and one with `LASH_SPILL_CODEC=gv` on top).
//!
//! ```
//! use lash_mapreduce::{run_job, EngineConfig, Emitter, Job};
//!
//! /// Classic word count.
//! struct WordCount;
//!
//! impl Job for WordCount {
//!     type Input = String;
//!     type Key = String;
//!     type Value = u64;
//!     type Output = (String, u64);
//!
//!     fn map(&self, line: &String, emit: &mut Emitter<'_, Self>) {
//!         for word in line.split_whitespace() {
//!             emit.emit(word.to_owned(), 1);
//!         }
//!     }
//!
//!     fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
//!         vec![values.into_iter().sum()]
//!     }
//!
//!     fn reduce(
//!         &self,
//!         key: String,
//!         values: impl Iterator<Item = u64>,
//!         out: &mut Vec<(String, u64)>,
//!     ) {
//!         out.push((key, values.sum()));
//!     }
//!
//!     fn encode_key(&self, key: &String, buf: &mut Vec<u8>) {
//!         buf.extend_from_slice(key.as_bytes());
//!     }
//!     fn decode_key(&self, bytes: &[u8]) -> String {
//!         String::from_utf8(bytes.to_vec()).unwrap()
//!     }
//!     fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
//!         buf.extend_from_slice(&value.to_le_bytes());
//!     }
//!     fn decode_value(&self, bytes: &[u8]) -> u64 {
//!         u64::from_le_bytes(bytes.try_into().unwrap())
//!     }
//! }
//!
//! let inputs = vec!["the quick brown fox".to_owned(), "the lazy dog".to_owned()];
//!
//! // All in memory…
//! let result = run_job(&WordCount, &inputs, &EngineConfig::default()).unwrap();
//! assert!(result.outputs.contains(&("the".to_owned(), 2)));
//!
//! // …or out-of-core, spilling sorted runs after every 64 buffered bytes —
//! // byte-identical output, nonzero spill counters.
//! let cfg = EngineConfig::default().with_spill_threshold(Some(64));
//! let spilled = run_job(&WordCount, &inputs, &cfg).unwrap();
//! assert!(spilled.outputs.contains(&("the".to_owned(), 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod error;
pub mod merge;
pub mod runtime;
pub mod shuffle;
pub mod spill;
pub mod types;

pub use config::{EngineConfig, FailurePlan, Phase, SPILL_THRESHOLD_ENV};
pub use counters::{CounterSnapshot, Counters};
pub use error::EngineError;
pub use runtime::{run_job, JobMetrics, JobResult};
pub use spill::{SpillCodec, SPILL_CODEC_ENV};
pub use types::{Emitter, Job};
