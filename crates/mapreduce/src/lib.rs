//! # lash-mapreduce
//!
//! An in-process, multi-threaded MapReduce engine with Hadoop-like semantics,
//! built as the execution substrate for LASH (the paper runs on a Hadoop
//! cluster; this crate reproduces the programming contract and the measured
//! quantities on a single machine).
//!
//! Features:
//!
//! * typed [`Job`] trait with `map`, optional `combine`, and `reduce`;
//! * real byte-level shuffle: every intermediate key/value pair is serialized
//!   through the job's codec, partitioned by key hash, sorted and grouped by
//!   key bytes — so counters like [`CounterSnapshot::map_output_bytes`]
//!   measure the same representation a Hadoop job would ship;
//! * per-phase wall-clock timing (map / shuffle / reduce), the quantities the
//!   paper's stacked bar charts report;
//! * configurable parallelism (worker threads stand in for cluster slots);
//! * deterministic failure injection with task retry, mirroring Hadoop's
//!   transparent fault tolerance.
//!
//! ```
//! use lash_mapreduce::{run_job, ClusterConfig, Emitter, Job};
//!
//! /// Classic word count.
//! struct WordCount;
//!
//! impl Job for WordCount {
//!     type Input = String;
//!     type Key = String;
//!     type Value = u64;
//!     type Output = (String, u64);
//!
//!     fn map(&self, line: &String, emit: &mut Emitter<'_, String, u64>) {
//!         for word in line.split_whitespace() {
//!             emit.emit(word.to_owned(), 1);
//!         }
//!     }
//!
//!     fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
//!         vec![values.into_iter().sum()]
//!     }
//!
//!     fn reduce(&self, key: String, values: Vec<u64>, out: &mut Vec<(String, u64)>) {
//!         out.push((key, values.into_iter().sum()));
//!     }
//!
//!     fn encode_key(&self, key: &String, buf: &mut Vec<u8>) {
//!         buf.extend_from_slice(key.as_bytes());
//!     }
//!     fn decode_key(&self, bytes: &[u8]) -> String {
//!         String::from_utf8(bytes.to_vec()).unwrap()
//!     }
//!     fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
//!         buf.extend_from_slice(&value.to_le_bytes());
//!     }
//!     fn decode_value(&self, bytes: &[u8]) -> u64 {
//!         u64::from_le_bytes(bytes.try_into().unwrap())
//!     }
//! }
//!
//! let inputs = vec!["the quick brown fox".to_owned(), "the lazy dog".to_owned()];
//! let result = run_job(&WordCount, &inputs, &ClusterConfig::default()).unwrap();
//! assert!(result.outputs.contains(&("the".to_owned(), 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod error;
pub mod runtime;
pub mod shuffle;
pub mod types;

pub use config::{ClusterConfig, FailurePlan, Phase};
pub use counters::{CounterSnapshot, Counters};
pub use error::EngineError;
pub use runtime::{run_job, JobMetrics, JobResult};
pub use types::{Emitter, Job};
