//! Engine errors.

use crate::config::Phase;

/// Fatal job errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A task failed more than `max_attempts` times.
    RetriesExhausted {
        /// The phase of the failing task.
        phase: Phase,
        /// The task index within its phase.
        task: usize,
        /// The number of attempts made.
        attempts: u32,
    },
    /// The shuffle encountered undecodable record or run framing (a
    /// truncated spill frame, a checksum mismatch, or inconsistent record
    /// lengths inside a verified frame).
    CorruptShuffle(String),
    /// A spill file could not be created, written, or read back.
    SpillIo(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RetriesExhausted {
                phase,
                task,
                attempts,
            } => write!(f, "{phase:?} task {task} failed after {attempts} attempts"),
            EngineError::CorruptShuffle(msg) => write!(f, "corrupt shuffle data: {msg}"),
            EngineError::SpillIo(msg) => write!(f, "shuffle spill I/O: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::RetriesExhausted {
            phase: Phase::Map,
            task: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("task 3"));
        assert!(e.to_string().contains("4 attempts"));
    }
}
