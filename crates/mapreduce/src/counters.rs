//! Job counters, mirroring the Hadoop counters the paper reports
//! (most importantly `MAP_OUTPUT_BYTES`), plus the out-of-core shuffle
//! counters (`SPILLED_BYTES` and friends).
//!
//! Every counter is *tracked*: increments land both in the job-local
//! atomic (snapshotted into the job's [`CounterSnapshot`]) and, live, in
//! the process-wide [`lash_obs`] registry under `mapreduce.<field>` — so
//! spill pressure is observable *while* a job runs, not only from its
//! end-of-job snapshot.
//!
//! Counters are declared through [`define_counters!`], which splits them
//! into a `sum` block (additive counters) and a `max` block (high-water
//! gauges) and derives [`CounterSnapshot::merge`] from that split — the
//! fold each field uses is part of its declaration, so a new metric cannot
//! silently pick the wrong aggregation.

use std::sync::atomic::{AtomicU64, Ordering};

/// An additive job counter that writes through to the process-wide
/// registry. Aggregating counters across jobs means summing them.
#[derive(Debug)]
pub struct TrackedCounter {
    local: AtomicU64,
    global: lash_obs::Counter,
}

impl TrackedCounter {
    fn register(name: &str) -> TrackedCounter {
        TrackedCounter {
            local: AtomicU64::new(0),
            global: lash_obs::global().counter(name),
        }
    }

    /// Adds `n` to the job-local value and the registry.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.local.fetch_add(n, Ordering::Relaxed);
            self.global.add(n);
        }
    }

    /// The job-local value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

/// A high-water-mark job gauge that writes through to the process-wide
/// registry. Aggregating gauges means taking the maximum, never the sum.
#[derive(Debug)]
pub struct TrackedGauge {
    local: AtomicU64,
    global: lash_obs::Gauge,
}

impl TrackedGauge {
    fn register(name: &str) -> TrackedGauge {
        TrackedGauge {
            local: AtomicU64::new(0),
            global: lash_obs::global().gauge(name),
        }
    }

    /// Raises the job-local high-water mark (and the registry's) to at
    /// least `n`.
    #[inline]
    pub fn raise(&self, n: u64) {
        self.local.fetch_max(n, Ordering::Relaxed);
        self.global.raise(n);
    }

    /// The job-local value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

/// Declares [`Counters`] and [`CounterSnapshot`] from one field list split
/// by aggregation semantics: `sum` fields are additive
/// ([`TrackedCounter`], summed by [`CounterSnapshot::merge`]), `max`
/// fields are high-water gauges ([`TrackedGauge`], max-combined).
macro_rules! define_counters {
    (
        sum { $($(#[$sdoc:meta])* $sfield:ident,)+ }
        max { $($(#[$mdoc:meta])* $mfield:ident,)+ }
    ) => {
        /// Live atomic counters updated by tasks, registered in the
        /// shared [`lash_obs`] registry as `mapreduce.<field>`.
        #[derive(Debug)]
        pub struct Counters {
            $($(#[$sdoc])* pub $sfield: TrackedCounter,)+
            $($(#[$mdoc])* pub $mfield: TrackedGauge,)+
        }

        impl Default for Counters {
            fn default() -> Counters {
                Counters {
                    $($sfield: TrackedCounter::register(
                        concat!("mapreduce.", stringify!($sfield)),
                    ),)+
                    $($mfield: TrackedGauge::register(
                        concat!("mapreduce.", stringify!($mfield)),
                    ),)+
                }
            }
        }

        impl Counters {
            /// Takes an immutable snapshot of the job-local values.
            pub fn snapshot(&self) -> CounterSnapshot {
                CounterSnapshot {
                    $($sfield: self.$sfield.get(),)+
                    $($mfield: self.$mfield.get(),)+
                }
            }
        }

        /// An immutable snapshot of [`Counters`], attached to job results.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct CounterSnapshot {
            $($(#[$sdoc])* pub $sfield: u64,)+
            $($(#[$mdoc])* pub $mfield: u64,)+
        }

        impl CounterSnapshot {
            /// Folds `other` into `self` with each field's declared
            /// aggregation: additive counters sum, high-water gauges
            /// max-combine.
            pub fn merge(&mut self, other: &CounterSnapshot) {
                $(self.$sfield += other.$sfield;)+
                $(self.$mfield = self.$mfield.max(other.$mfield);)+
            }
        }
    };
}

define_counters! {
    sum {
        /// Input records consumed by map tasks.
        map_input_records,
        /// Key/value pairs emitted by `map` (pre-combiner).
        map_output_records,
        /// Serialized key+value bytes shipped from map to reduce
        /// (post-combiner — the data actually transferred between the
        /// phases).
        map_output_bytes,
        /// Serialized bytes including record framing.
        map_output_materialized_bytes,
        /// Records entering combiners.
        combine_input_records,
        /// Records leaving combiners.
        combine_output_records,
        /// Reduce-input bytes written to spill files (Hadoop's
        /// `SPILLED_RECORDS` cousin, in bytes): zero on the all-in-memory
        /// path.
        spilled_bytes,
        /// Sorted runs written to disk by map tasks.
        spilled_runs,
        /// Runs (on-disk and in-memory) consumed by reduce-side k-way
        /// merges, including intermediate hierarchical merge passes.
        merged_runs,
        /// Intermediate merge passes: groups of at most `merge_fan_in`
        /// runs pre-merged into one on-disk run because a partition held
        /// more runs than a reduce task may open at once. Zero when every
        /// partition fits one merge.
        merge_passes,
        /// Key/value pairs eliminated by running the combiner *during*
        /// hierarchical merge passes (combine inputs minus outputs): zero
        /// when merges stay flat or the combiner is off.
        merged_combined_pairs,
        /// Distinct keys seen by reducers.
        reduce_input_groups,
        /// Values seen by reducers.
        reduce_input_records,
        /// Records written by reducers.
        reduce_output_records,
        /// Map tasks executed (including retries).
        map_task_attempts,
        /// Reduce tasks executed (including retries).
        reduce_task_attempts,
        /// Injected/encountered map task failures.
        failed_map_tasks,
        /// Injected/encountered reduce task failures.
        failed_reduce_tasks,
    }
    max {
        /// High-water mark of any single map task's sort buffer, in
        /// serialized bytes — the quantity bounded by
        /// `spill_threshold_bytes`.
        peak_resident_bytes,
    }
}

impl Counters {
    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &TrackedCounter, n: u64) {
        counter.add(n);
    }

    /// Raises a high-water-mark gauge to at least `n`.
    #[inline]
    pub fn raise(gauge: &TrackedGauge, n: u64) {
        gauge.raise(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = Counters::default();
        Counters::add(&c.map_input_records, 5);
        Counters::add(&c.map_input_records, 2);
        Counters::add(&c.map_output_bytes, 100);
        let s = c.snapshot();
        assert_eq!(s.map_input_records, 7);
        assert_eq!(s.map_output_bytes, 100);
        assert_eq!(s.reduce_output_records, 0);
    }

    #[test]
    fn raise_keeps_the_maximum() {
        let c = Counters::default();
        Counters::raise(&c.peak_resident_bytes, 10);
        Counters::raise(&c.peak_resident_bytes, 4);
        Counters::raise(&c.peak_resident_bytes, 25);
        Counters::raise(&c.peak_resident_bytes, 7);
        assert_eq!(c.snapshot().peak_resident_bytes, 25);
    }

    /// The aggregation-semantics pin: merging snapshots must *sum* the
    /// additive counters and *max-combine* the high-water gauges. A field
    /// added to the wrong `define_counters!` block fails here.
    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = CounterSnapshot {
            map_input_records: 3,
            spilled_bytes: 10,
            peak_resident_bytes: 100,
            ..CounterSnapshot::default()
        };
        let b = CounterSnapshot {
            map_input_records: 4,
            spilled_bytes: 2,
            peak_resident_bytes: 60,
            ..CounterSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.map_input_records, 7);
        assert_eq!(a.spilled_bytes, 12);
        // The gauge takes the larger high-water mark, not 160.
        assert_eq!(a.peak_resident_bytes, 100);
        // Merging in the other direction also keeps the maximum.
        let mut c = b;
        c.merge(&a);
        assert_eq!(c.peak_resident_bytes, 100);
    }

    /// Increments land in the process-wide registry as they happen, not
    /// only in the end-of-job snapshot. (Asserting on deltas: other tests
    /// in the binary share the global registry.)
    #[test]
    fn counters_write_through_to_the_global_registry() {
        let global = lash_obs::global().counter("mapreduce.spilled_runs");
        let before = global.get();
        let c = Counters::default();
        Counters::add(&c.spilled_runs, 5);
        assert!(global.get() >= before + 5);
        assert_eq!(c.snapshot().spilled_runs, 5);
    }
}
