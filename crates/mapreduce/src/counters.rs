//! Job counters, mirroring the Hadoop counters the paper reports
//! (most importantly `MAP_OUTPUT_BYTES`), plus the out-of-core shuffle
//! counters (`SPILLED_BYTES` and friends).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters updated by tasks.
#[derive(Debug, Default)]
pub struct Counters {
    /// Input records consumed by map tasks.
    pub map_input_records: AtomicU64,
    /// Key/value pairs emitted by `map` (pre-combiner).
    pub map_output_records: AtomicU64,
    /// Serialized key+value bytes shipped from map to reduce (post-combiner —
    /// the data actually transferred between the phases).
    pub map_output_bytes: AtomicU64,
    /// Serialized bytes including record framing.
    pub map_output_materialized_bytes: AtomicU64,
    /// Records entering combiners.
    pub combine_input_records: AtomicU64,
    /// Records leaving combiners.
    pub combine_output_records: AtomicU64,
    /// Reduce-input bytes written to spill files (Hadoop's `SPILLED_RECORDS`
    /// cousin, in bytes): zero on the all-in-memory path.
    pub spilled_bytes: AtomicU64,
    /// Sorted runs written to disk by map tasks.
    pub spilled_runs: AtomicU64,
    /// Runs (on-disk and in-memory) consumed by reduce-side k-way merges,
    /// including intermediate hierarchical merge passes.
    pub merged_runs: AtomicU64,
    /// Intermediate merge passes: groups of at most `merge_fan_in` runs
    /// pre-merged into one on-disk run because a partition held more runs
    /// than a reduce task may open at once. Zero when every partition fits
    /// one merge.
    pub merge_passes: AtomicU64,
    /// High-water mark of any single map task's sort buffer, in serialized
    /// bytes — the quantity bounded by `spill_threshold_bytes`.
    pub peak_resident_bytes: AtomicU64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: AtomicU64,
    /// Values seen by reducers.
    pub reduce_input_records: AtomicU64,
    /// Records written by reducers.
    pub reduce_output_records: AtomicU64,
    /// Map tasks executed (including retries).
    pub map_task_attempts: AtomicU64,
    /// Reduce tasks executed (including retries).
    pub reduce_task_attempts: AtomicU64,
    /// Injected/encountered map task failures.
    pub failed_map_tasks: AtomicU64,
    /// Injected/encountered reduce task failures.
    pub failed_reduce_tasks: AtomicU64,
}

impl Counters {
    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water-mark counter to at least `n`.
    #[inline]
    pub fn raise(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map_input_records: self.map_input_records.load(Ordering::Relaxed),
            map_output_records: self.map_output_records.load(Ordering::Relaxed),
            map_output_bytes: self.map_output_bytes.load(Ordering::Relaxed),
            map_output_materialized_bytes: self
                .map_output_materialized_bytes
                .load(Ordering::Relaxed),
            combine_input_records: self.combine_input_records.load(Ordering::Relaxed),
            combine_output_records: self.combine_output_records.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spilled_runs: self.spilled_runs.load(Ordering::Relaxed),
            merged_runs: self.merged_runs.load(Ordering::Relaxed),
            merge_passes: self.merge_passes.load(Ordering::Relaxed),
            peak_resident_bytes: self.peak_resident_bytes.load(Ordering::Relaxed),
            reduce_input_groups: self.reduce_input_groups.load(Ordering::Relaxed),
            reduce_input_records: self.reduce_input_records.load(Ordering::Relaxed),
            reduce_output_records: self.reduce_output_records.load(Ordering::Relaxed),
            map_task_attempts: self.map_task_attempts.load(Ordering::Relaxed),
            reduce_task_attempts: self.reduce_task_attempts.load(Ordering::Relaxed),
            failed_map_tasks: self.failed_map_tasks.load(Ordering::Relaxed),
            failed_reduce_tasks: self.failed_reduce_tasks.load(Ordering::Relaxed),
        }
    }
}

/// An immutable snapshot of [`Counters`], attached to job results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Input records consumed by map tasks.
    pub map_input_records: u64,
    /// Key/value pairs emitted by `map` (pre-combiner).
    pub map_output_records: u64,
    /// Serialized key+value bytes shipped from map to reduce (post-combiner).
    pub map_output_bytes: u64,
    /// Serialized bytes including record framing.
    pub map_output_materialized_bytes: u64,
    /// Records entering combiners.
    pub combine_input_records: u64,
    /// Records leaving combiners.
    pub combine_output_records: u64,
    /// Reduce-input bytes written to spill files; zero without spilling.
    pub spilled_bytes: u64,
    /// Sorted runs written to disk by map tasks.
    pub spilled_runs: u64,
    /// Runs (on-disk and in-memory) consumed by reduce-side merges,
    /// including intermediate hierarchical merge passes.
    pub merged_runs: u64,
    /// Intermediate hierarchical merge passes executed by reduce tasks.
    pub merge_passes: u64,
    /// High-water mark of any single map task's sort buffer, in bytes.
    pub peak_resident_bytes: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Values seen by reducers.
    pub reduce_input_records: u64,
    /// Records written by reducers.
    pub reduce_output_records: u64,
    /// Map tasks executed (including retries).
    pub map_task_attempts: u64,
    /// Reduce tasks executed (including retries).
    pub reduce_task_attempts: u64,
    /// Injected/encountered map task failures.
    pub failed_map_tasks: u64,
    /// Injected/encountered reduce task failures.
    pub failed_reduce_tasks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = Counters::default();
        Counters::add(&c.map_input_records, 5);
        Counters::add(&c.map_input_records, 2);
        Counters::add(&c.map_output_bytes, 100);
        let s = c.snapshot();
        assert_eq!(s.map_input_records, 7);
        assert_eq!(s.map_output_bytes, 100);
        assert_eq!(s.reduce_output_records, 0);
    }

    #[test]
    fn raise_keeps_the_maximum() {
        let c = Counters::default();
        Counters::raise(&c.peak_resident_bytes, 10);
        Counters::raise(&c.peak_resident_bytes, 4);
        Counters::raise(&c.peak_resident_bytes, 25);
        Counters::raise(&c.peak_resident_bytes, 7);
        assert_eq!(c.snapshot().peak_resident_bytes, 25);
    }
}
