//! Record framing, partitioning, and the sort/group shuffle.
//!
//! Map tasks serialize records as `[varint klen][key][varint vlen][value]`
//! into one byte buffer per reduce partition; the shuffle concatenates the
//! buffers destined for a partition, sorts record references by key bytes,
//! and groups equal keys. Partition assignment hashes the encoded key, as
//! Hadoop's default `HashPartitioner` hashes serialized keys.

use std::hash::{Hash, Hasher};

/// Writes one framed record, returning (payload bytes, materialized bytes).
pub fn write_record(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) -> (u64, u64) {
    let before = buf.len();
    write_varint(buf, key.len() as u64);
    buf.extend_from_slice(key);
    write_varint(buf, value.len() as u64);
    buf.extend_from_slice(value);
    let payload = (key.len() + value.len()) as u64;
    (payload, (buf.len() - before) as u64)
}

/// The reduce partition of an encoded key.
pub fn partition_of(key: &[u8], num_partitions: usize) -> usize {
    // FNV-1a over key bytes: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % num_partitions as u64) as usize
}

/// A reference to one record inside a shuffle buffer.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef {
    /// Byte range of the key.
    pub key: (u32, u32),
    /// Byte range of the value.
    pub value: (u32, u32),
}

/// A byte range `(start, end)` into a shuffle buffer.
pub type ByteRange = (u32, u32);

/// A shuffled, grouped reduce partition: `data` owns the bytes, `groups`
/// lists (key range, value ranges) sorted by key bytes.
#[derive(Debug, Default)]
pub struct GroupedPartition {
    /// The concatenated map outputs for this partition.
    pub data: Vec<u8>,
    /// Key byte-range plus all value byte-ranges, grouped and sorted by key.
    pub groups: Vec<(ByteRange, Vec<ByteRange>)>,
}

impl GroupedPartition {
    /// Parses, sorts, and groups the concatenated map outputs.
    pub fn build(data: Vec<u8>) -> Result<GroupedPartition, crate::EngineError> {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let (klen, n) = read_varint(&data[pos..])
                .ok_or_else(|| crate::EngineError::CorruptShuffle("key length".into()))?;
            pos += n;
            let kstart = pos;
            pos += klen as usize;
            if pos > data.len() {
                return Err(crate::EngineError::CorruptShuffle("key bytes".into()));
            }
            let (vlen, n) = read_varint(&data[pos..])
                .ok_or_else(|| crate::EngineError::CorruptShuffle("value length".into()))?;
            pos += n;
            let vstart = pos;
            pos += vlen as usize;
            if pos > data.len() {
                return Err(crate::EngineError::CorruptShuffle("value bytes".into()));
            }
            records.push(RecordRef {
                key: (kstart as u32, (kstart + klen as usize) as u32),
                value: (vstart as u32, (vstart + vlen as usize) as u32),
            });
        }
        // Stable sort by key bytes keeps value order deterministic (map task
        // order, then emission order).
        records.sort_by(|a, b| {
            data[a.key.0 as usize..a.key.1 as usize].cmp(&data[b.key.0 as usize..b.key.1 as usize])
        });
        let mut groups: Vec<(ByteRange, Vec<ByteRange>)> = Vec::new();
        for r in records {
            let same = groups.last().is_some_and(|(k, _)| {
                data[k.0 as usize..k.1 as usize] == data[r.key.0 as usize..r.key.1 as usize]
            });
            if same {
                groups.last_mut().expect("nonempty").1.push(r.value);
            } else {
                groups.push((r.key, vec![r.value]));
            }
        }
        Ok(GroupedPartition { data, groups })
    }

    /// The key bytes of group `i`.
    pub fn key_bytes(&self, i: usize) -> &[u8] {
        let (lo, hi) = self.groups[i].0;
        &self.data[lo as usize..hi as usize]
    }

    /// The value byte slices of group `i`.
    pub fn value_bytes(&self, i: usize) -> impl Iterator<Item = &[u8]> + '_ {
        self.groups[i]
            .1
            .iter()
            .map(move |&(lo, hi)| &self.data[lo as usize..hi as usize])
    }
}

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= 10 {
            return None;
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// A hash helper used in tests and by jobs that partition typed keys.
pub fn stable_hash<T: Hash>(value: &T) -> u64 {
    // Not DefaultHasher: its seeds are stable but unspecified across
    // versions; FNV over the Hash stream keeps partition assignment
    // reproducible.
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip_and_grouping() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"banana", b"1");
        write_record(&mut buf, b"apple", b"2");
        write_record(&mut buf, b"banana", b"3");
        let g = GroupedPartition::build(buf).unwrap();
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.key_bytes(0), b"apple");
        assert_eq!(g.key_bytes(1), b"banana");
        let vals: Vec<&[u8]> = g.value_bytes(1).collect();
        assert_eq!(vals, vec![b"1".as_ref(), b"3".as_ref()]);
    }

    #[test]
    fn empty_keys_and_values_are_legal() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"", b"");
        write_record(&mut buf, b"", b"x");
        let g = GroupedPartition::build(buf).unwrap();
        assert_eq!(g.groups.len(), 1);
        let vals: Vec<&[u8]> = g.value_bytes(0).collect();
        assert_eq!(vals, vec![b"".as_ref(), b"x".as_ref()]);
    }

    #[test]
    fn byte_accounting() {
        let mut buf = Vec::new();
        let (payload, materialized) = write_record(&mut buf, b"abc", b"de");
        assert_eq!(payload, 5);
        assert_eq!(materialized, 7); // two 1-byte length prefixes
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        // Truncated value.
        let mut buf = Vec::new();
        write_record(&mut buf, b"k", b"value");
        buf.truncate(buf.len() - 2);
        assert!(GroupedPartition::build(buf).is_err());
        // Length prefix pointing past the end.
        let bad = vec![0x20, b'a'];
        assert!(GroupedPartition::build(bad).is_err());
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for n in 1..16 {
            for key in [b"a".as_ref(), b"bc", b"", b"longer-key-material"] {
                let p = partition_of(key, n);
                assert!(p < n);
                assert_eq!(p, partition_of(key, n));
            }
        }
    }

    #[test]
    fn stable_hash_differs_for_values() {
        assert_ne!(stable_hash(&1u32), stable_hash(&2u32));
        assert_eq!(stable_hash(&"x"), stable_hash(&"x"));
    }
}
