//! Record framing, partitioning, and the map-side sort buffer.
//!
//! Map tasks serialize records as `[varint klen][key][varint vlen][value]`
//! into one [`RunBuffer`] per reduce partition. A finalized buffer is a
//! *sorted run*: its record references are stably sorted by key bytes
//! (preserving emission order within equal keys), optionally combined, and
//! either handed to the reduce phase in memory or spilled to disk (see
//! [`crate::spill`]). Partition assignment hashes the encoded key, as
//! Hadoop's default `HashPartitioner` hashes serialized keys.

use std::hash::{Hash, Hasher};

/// Writes one framed record, returning (payload bytes, materialized bytes).
pub fn write_record(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) -> (u64, u64) {
    let before = buf.len();
    write_varint(buf, key.len() as u64);
    buf.extend_from_slice(key);
    write_varint(buf, value.len() as u64);
    buf.extend_from_slice(value);
    let payload = (key.len() + value.len()) as u64;
    (payload, (buf.len() - before) as u64)
}

/// The reduce partition of an encoded key.
pub fn partition_of(key: &[u8], num_partitions: usize) -> usize {
    // FNV-1a over key bytes: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % num_partitions as u64) as usize
}

/// A reference to one record inside a shuffle buffer.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef {
    /// Byte offset of the record's first framing byte.
    pub start: u32,
    /// Byte range of the key.
    pub key: (u32, u32),
    /// Byte range of the value. The record ends at `value.1`.
    pub value: (u32, u32),
}

impl RecordRef {
    /// The full framed byte range of the record.
    pub fn framed(&self) -> (u32, u32) {
        (self.start, self.value.1)
    }
}

/// A buffer of framed records plus their references — the unit the map side
/// accumulates, sorts, combines, and ships (in memory or as a spilled run).
#[derive(Debug, Default)]
pub struct RunBuffer {
    /// Concatenated framed records.
    pub data: Vec<u8>,
    /// One reference per record, in push order until [`RunBuffer::sort`].
    pub recs: Vec<RecordRef>,
}

impl RunBuffer {
    /// Appends one record, returning (payload bytes, materialized bytes).
    ///
    /// # Panics
    /// A single buffer addresses records with `u32` offsets; pushing past
    /// 4 GiB panics rather than silently corrupting record ranges. Set
    /// `spill_threshold_bytes` to bound buffers long before that.
    pub fn push(&mut self, key: &[u8], value: &[u8]) -> (u64, u64) {
        assert!(
            self.data.len() + key.len() + value.len() + 20 <= u32::MAX as usize,
            "shuffle buffer exceeds 4 GiB; configure spill_threshold_bytes to bound it"
        );
        let start = self.data.len() as u32;
        let sizes = write_record(&mut self.data, key, value);
        let kstart = start + varint_len(key.len() as u64);
        let vstart = kstart + key.len() as u32 + varint_len(value.len() as u64);
        self.recs.push(RecordRef {
            start,
            key: (kstart, kstart + key.len() as u32),
            value: (vstart, vstart + value.len() as u32),
        });
        sizes
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True if no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Drops all records, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
        self.recs.clear();
    }

    /// The key bytes of record `r`.
    pub fn key(&self, r: &RecordRef) -> &[u8] {
        &self.data[r.key.0 as usize..r.key.1 as usize]
    }

    /// The value bytes of record `r`.
    pub fn value(&self, r: &RecordRef) -> &[u8] {
        &self.data[r.value.0 as usize..r.value.1 as usize]
    }

    /// The full framed bytes of record `r` (length prefixes included).
    pub fn framed(&self, r: &RecordRef) -> &[u8] {
        let (lo, hi) = r.framed();
        &self.data[lo as usize..hi as usize]
    }

    /// Stable-sorts the record references by key bytes; records with equal
    /// keys keep their emission order. The data bytes are not moved.
    pub fn sort(&mut self) {
        let data = std::mem::take(&mut self.data);
        self.recs.sort_by(|a, b| {
            data[a.key.0 as usize..a.key.1 as usize].cmp(&data[b.key.0 as usize..b.key.1 as usize])
        });
        self.data = data;
    }

    /// Parses a raw byte buffer of framed records into a `RunBuffer` (record
    /// references in storage order). Used by the reduce side to re-validate
    /// spilled chunks; any framing inconsistency is corruption.
    pub fn parse(data: Vec<u8>) -> Result<RunBuffer, crate::EngineError> {
        let mut recs = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let start = pos as u32;
            let (klen, n) = read_varint(&data[pos..])
                .ok_or_else(|| crate::EngineError::CorruptShuffle("key length".into()))?;
            pos += n;
            let kstart = pos;
            pos += klen as usize;
            if pos > data.len() {
                return Err(crate::EngineError::CorruptShuffle("key bytes".into()));
            }
            let (vlen, n) = read_varint(&data[pos..])
                .ok_or_else(|| crate::EngineError::CorruptShuffle("value length".into()))?;
            pos += n;
            let vstart = pos;
            pos += vlen as usize;
            if pos > data.len() {
                return Err(crate::EngineError::CorruptShuffle("value bytes".into()));
            }
            recs.push(RecordRef {
                start,
                key: (kstart as u32, (kstart + klen as usize) as u32),
                value: (vstart as u32, (vstart + vlen as usize) as u32),
            });
        }
        Ok(RunBuffer { data, recs })
    }
}

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn varint_len(v: u64) -> u32 {
    (64 - v.max(1).leading_zeros()).div_ceil(7).max(1)
}

pub(crate) fn read_varint(input: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= 10 {
            return None;
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// A hash helper used in tests and by jobs that partition typed keys.
pub fn stable_hash<T: Hash>(value: &T) -> u64 {
    // Not DefaultHasher: its seeds are stable but unspecified across
    // versions; FNV over the Hash stream keeps partition assignment
    // reproducible.
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_parse_agree_on_ranges() {
        let mut run = RunBuffer::default();
        run.push(b"banana", b"1");
        run.push(b"apple", b"22");
        run.push(b"", b"");
        let reparsed = RunBuffer::parse(run.data.clone()).unwrap();
        assert_eq!(run.len(), reparsed.len());
        for (a, b) in run.recs.iter().zip(reparsed.recs.iter()) {
            assert_eq!(run.key(a), reparsed.key(b));
            assert_eq!(run.value(a), reparsed.value(b));
            assert_eq!(a.framed(), b.framed());
        }
    }

    #[test]
    fn sort_is_stable_by_key_bytes() {
        let mut run = RunBuffer::default();
        run.push(b"banana", b"1");
        run.push(b"apple", b"2");
        run.push(b"banana", b"3");
        run.sort();
        let keys: Vec<&[u8]> = run.recs.iter().map(|r| run.key(r)).collect();
        assert_eq!(keys, vec![b"apple".as_ref(), b"banana", b"banana"]);
        let banana_vals: Vec<&[u8]> = run
            .recs
            .iter()
            .filter(|r| run.key(r) == b"banana")
            .map(|r| run.value(r))
            .collect();
        assert_eq!(banana_vals, vec![b"1".as_ref(), b"3".as_ref()]);
    }

    #[test]
    fn framed_bytes_round_trip_through_a_fresh_buffer() {
        let mut run = RunBuffer::default();
        run.push(b"key", b"value-bytes");
        let framed = run.framed(&run.recs[0]).to_vec();
        let back = RunBuffer::parse(framed).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.key(&back.recs[0]), b"key");
        assert_eq!(back.value(&back.recs[0]), b"value-bytes");
    }

    #[test]
    fn byte_accounting() {
        let mut buf = Vec::new();
        let (payload, materialized) = write_record(&mut buf, b"abc", b"de");
        assert_eq!(payload, 5);
        assert_eq!(materialized, 7); // two 1-byte length prefixes
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(varint_len(v) as usize, buf.len(), "v={v}");
        }
    }

    #[test]
    fn corrupt_data_is_rejected() {
        // Truncated value.
        let mut buf = Vec::new();
        write_record(&mut buf, b"k", b"value");
        buf.truncate(buf.len() - 2);
        assert!(RunBuffer::parse(buf).is_err());
        // Length prefix pointing past the end.
        let bad = vec![0x20, b'a'];
        assert!(RunBuffer::parse(bad).is_err());
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for n in 1..16 {
            for key in [b"a".as_ref(), b"bc", b"", b"longer-key-material"] {
                let p = partition_of(key, n);
                assert!(p < n);
                assert_eq!(p, partition_of(key, n));
            }
        }
    }

    #[test]
    fn stable_hash_differs_for_values() {
        assert_ne!(stable_hash(&1u32), stable_hash(&2u32));
        assert_eq!(stable_hash(&"x"), stable_hash(&"x"));
    }
}
