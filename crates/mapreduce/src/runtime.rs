//! The execution engine: splits, task scheduling, retries, the external-sort
//! shuffle, and per-phase timing.
//!
//! Execution proceeds in three synchronized phases so their wall-clock costs
//! can be reported separately (the paper's stacked map/shuffle/reduce bars):
//!
//! 1. **map** — input splits are processed by a pool of worker threads; each
//!    task serializes its output into per-partition sort buffers, sorting and
//!    combining on finalize (Hadoop's map-side sort). With a spill threshold
//!    configured, a task whose buffers outgrow it writes sorted runs to its
//!    spill file and keeps going with an empty buffer;
//! 2. **shuffle** — the sorted runs (in-memory buffers and on-disk spill
//!    runs) are assembled into one run list per reduce partition;
//! 3. **reduce** — each reduce task k-way merges its partition's runs and
//!    *streams* key groups into the reducer: values are decoded one at a
//!    time off the merge, so no partition is ever materialized. A partition
//!    with more runs than [`EngineConfig::merge_fan_in`] is merged
//!    *hierarchically* (Hadoop's `io.sort.factor`): adjacent groups of at
//!    most `merge_fan_in` runs are pre-merged into intermediate on-disk
//!    runs — counted by the `merge_passes` counter — closing each group's
//!    file handles between passes, so a job with thousands of spilled map
//!    tasks never pins thousands of fds or resident chunks at once.
//!
//! Compared to the engine's original all-in-memory shuffle, the sort cost
//! now lands in the map phase and the merge cost in the reduce phase;
//! `shuffle_time` covers run-list assembly. Outputs are byte-identical
//! between the in-memory (`spill_threshold_bytes: None`) and spilled paths:
//! the merge's (key bytes, run sequence) order reproduces exactly the stable
//! global sort the old shuffle performed.
//!
//! Failed task attempts (via [`crate::FailurePlan`]) are retried in
//! subsequent scheduling rounds, up to `max_attempts`; retries are invisible
//! in the output, as in Hadoop. Spill I/O errors and corrupt runs are fatal
//! (deterministic re-execution cannot heal them).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::config::{EngineConfig, Phase};
use crate::counters::{CounterSnapshot, Counters};
use crate::error::EngineError;
use crate::merge::{Merger, RunSource};
use crate::shuffle::RunBuffer;
use crate::spill::{RunMeta, RunStreamWriter, SharedFile, SpillSpace};
use crate::types::{Emitter, Job, MapTaskOutput};

/// Wall-clock and counter metrics of one job run.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Map phase wall time (includes map-side sort, combine, and spills).
    pub map_time: Duration,
    /// Shuffle (run assembly) phase wall time.
    pub shuffle_time: Duration,
    /// Reduce phase wall time (includes the k-way merge).
    pub reduce_time: Duration,
    /// Total job wall time.
    pub total_time: Duration,
    /// Counter snapshot.
    pub counters: CounterSnapshot,
}

impl JobMetrics {
    /// Merges metrics of consecutive jobs: phase times add up, and the
    /// counter fold (sum vs. max) is the one each field declared in
    /// `define_counters!` — see [`CounterSnapshot::merge`].
    pub fn accumulate(&mut self, other: &JobMetrics) {
        self.map_time += other.map_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.total_time += other.total_time;
        self.counters.merge(&other.counters);
    }
}

/// Outputs plus metrics of a completed job.
#[derive(Debug)]
pub struct JobResult<O> {
    /// Reduce outputs, concatenated in reduce-partition order.
    pub outputs: Vec<O>,
    /// Run metrics.
    pub metrics: JobMetrics,
}

/// Runs `job` over `inputs` under `config`.
///
/// Tracing: the run opens a `mapreduce.job` span — a child of whatever
/// span is active on the calling thread (e.g. the miner's `mine.job`), or
/// a fresh trace root. Each phase span and each worker-side task span is
/// parented under it, and a typed error surfacing from the run triggers a
/// flight-recorder dump carrying this trace's id.
pub fn run_job<J: Job>(
    job: &J,
    inputs: &[J::Input],
    config: &EngineConfig,
) -> Result<JobResult<J::Output>, EngineError> {
    let _job_span = lash_obs::span!(
        "mapreduce.job",
        inputs = inputs.len(),
        reduce_tasks = config.num_reduce_tasks.max(1)
    );
    let result = run_job_inner(job, inputs, config);
    if let Err(e) = &result {
        lash_obs::flight::record_error("mapreduce.job", &e.to_string());
    }
    result
}

fn run_job_inner<J: Job>(
    job: &J,
    inputs: &[J::Input],
    config: &EngineConfig,
) -> Result<JobResult<J::Output>, EngineError> {
    let started = Instant::now();
    let counters = Counters::default();
    let num_parts = config.num_reduce_tasks.max(1);

    // The spill directory lives exactly as long as the job run; dropping it
    // (on success *or* error) removes every spill file.
    let spill_space = match config.spill_threshold_bytes {
        Some(_) => Some(SpillSpace::create(config.spill_dir.as_deref())?),
        None => None,
    };

    // ---- Map phase -------------------------------------------------------
    // Each phase derives one child context up front and passes it into the
    // worker pool (worker threads do not inherit this thread's trace
    // stack); the phase span itself is recorded under the same context
    // once the workers join, so task spans parent under the phase span.
    let obs = lash_obs::global();
    let map_started = Instant::now();
    let splits: Vec<std::ops::Range<usize>> = split_ranges(inputs.len(), config.split_size);
    let map_ctx = lash_obs::trace::current().map(|c| c.child());
    let map_outputs = run_with_retries(
        splits.len(),
        config.map_parallelism,
        config.max_attempts,
        Phase::Map,
        map_ctx,
        &counters,
        |task, attempt| {
            if config.failure_plan.should_fail(Phase::Map, task, attempt) {
                return Ok(None);
            }
            run_map_task(
                job,
                &inputs[splits[task].clone()],
                num_parts,
                config,
                spill_space.as_ref(),
                task,
                attempt,
                &counters,
            )
            .map(Some)
        },
    );
    // Recorded before `?`: an aborted phase still owns its task spans —
    // skipping the phase span would orphan them in the trace.
    let map_time = map_started.elapsed();
    obs.observe_span_with(
        map_ctx,
        "mapreduce.map",
        map_time,
        &[("tasks", splits.len().into())],
    );
    let map_outputs = map_outputs?;

    // ---- Shuffle phase: assemble each partition's run list --------------
    // Disk runs are referenced by *path* here, not by open handle: reduce
    // tasks open at most `merge_fan_in` runs' files per merge pass and close
    // them between passes, so the job never pins one fd per spilled map
    // task across the whole reduce phase.
    let shuffle_started = Instant::now();
    let mut sources: Vec<Vec<ReduceRun<'_>>> = (0..num_parts).map(|_| Vec::new()).collect();
    for output in &map_outputs {
        match output {
            MapTaskOutput::Mem(parts) => {
                for (part, run) in parts.iter().enumerate() {
                    if !run.is_empty() {
                        sources[part].push(ReduceRun::Mem(run));
                    }
                }
            }
            MapTaskOutput::Spilled { file, runs } => {
                let path = Arc::new(file.clone());
                for meta in runs {
                    sources[meta.partition as usize].push(ReduceRun::Disk {
                        path: Arc::clone(&path),
                        meta: meta.clone(),
                        temp: false,
                    });
                }
            }
        }
    }
    let shuffle_time = shuffle_started.elapsed();
    obs.observe_span("mapreduce.shuffle", shuffle_time, &[]);

    // ---- Reduce phase ----------------------------------------------------
    let reduce_started = Instant::now();
    let reduce_ctx = lash_obs::trace::current().map(|c| c.child());
    let reduce_outputs = run_with_retries(
        num_parts,
        config.reduce_parallelism,
        config.max_attempts,
        Phase::Reduce,
        reduce_ctx,
        &counters,
        |task, attempt| {
            if config
                .failure_plan
                .should_fail(Phase::Reduce, task, attempt)
            {
                return Ok(None);
            }
            run_reduce_task(
                job,
                &sources[task],
                task,
                config,
                spill_space.as_ref(),
                &counters,
            )
            .map(Some)
        },
    );
    let reduce_time = reduce_started.elapsed();
    obs.observe_span_with(
        reduce_ctx,
        "mapreduce.reduce",
        reduce_time,
        &[("tasks", num_parts.into())],
    );
    let reduce_outputs = reduce_outputs?;

    let outputs: Vec<J::Output> = reduce_outputs.into_iter().flatten().collect();
    drop(sources);
    drop(map_outputs);
    drop(spill_space);
    Ok(JobResult {
        outputs,
        metrics: JobMetrics {
            map_time,
            shuffle_time,
            reduce_time,
            total_time: started.elapsed(),
            counters: counters.snapshot(),
        },
    })
}

#[allow(clippy::too_many_arguments)]
fn run_map_task<J: Job>(
    job: &J,
    records: &[J::Input],
    num_parts: usize,
    config: &EngineConfig,
    spill_space: Option<&SpillSpace>,
    task: usize,
    attempt: u32,
    counters: &Counters,
) -> Result<MapTaskOutput, EngineError> {
    let spill_path = spill_space.map(|s| s.task_file(task, attempt));
    let mut emitter = Emitter::new(
        job,
        num_parts,
        config.use_combiner,
        config.spill_threshold_bytes,
        spill_path,
        config.spill_codec,
        counters,
    );
    for record in records {
        job.map(record, &mut emitter);
    }
    Counters::add(&counters.map_input_records, records.len() as u64);
    let (output, emitted) = emitter.finish()?;
    Counters::add(&counters.map_output_records, emitted);
    Ok(output)
}

/// Streams one key group's values off the merge, decoding lazily. The
/// engine drains any values the reducer leaves unconsumed, so the merge is
/// always positioned on the next group when the reducer returns.
struct GroupValues<'a, 'm, J: Job> {
    job: &'a J,
    merger: &'a mut Merger<'m>,
    key: &'a [u8],
    value_buf: &'a mut Vec<u8>,
    records: &'a mut u64,
    error: &'a mut Option<EngineError>,
}

impl<J: Job> Iterator for GroupValues<'_, '_, J> {
    type Item = J::Value;

    fn next(&mut self) -> Option<J::Value> {
        if self.error.is_some() {
            return None;
        }
        match self.merger.peek_key() {
            Some(k) if k == self.key => {}
            _ => return None,
        }
        match self.merger.pop_value_into(self.value_buf) {
            Ok(()) => {
                *self.records += 1;
                Some(self.job.decode_value(self.value_buf))
            }
            Err(e) => {
                *self.error = Some(e);
                None
            }
        }
    }
}

/// One run feeding a reduce task, referenced rather than opened: disk runs
/// carry their spill file *path*, and file handles live only for the
/// duration of one merge pass.
#[derive(Clone)]
enum ReduceRun<'a> {
    /// An in-memory run from an unspilled map task.
    Mem(&'a RunBuffer),
    /// An on-disk run: a spilled map-task run, or an intermediate run
    /// written by a hierarchical merge pass.
    Disk {
        path: Arc<PathBuf>,
        meta: RunMeta,
        /// True for intermediate runs this reduce task wrote itself: they
        /// have exactly one consumer, so the pass that merges them deletes
        /// them. Map-task spill files are shared across partitions and are
        /// only removed when the job's `SpillSpace` drops.
        temp: bool,
    },
}

/// Disk runs in a run list — the quantity the fan-in valve bounds
/// (in-memory runs hold no file handles).
fn count_disk_runs(runs: &[ReduceRun<'_>]) -> usize {
    runs.iter()
        .filter(|r| matches!(r, ReduceRun::Disk { .. }))
        .count()
}

/// Best-effort deletion of the intermediate runs a merge just consumed,
/// bounding peak spill-dir usage to ~2 rounds instead of all of them.
fn remove_temp_runs(runs: &[ReduceRun<'_>]) {
    for run in runs {
        if let ReduceRun::Disk {
            path, temp: true, ..
        } = run
        {
            let _ = std::fs::remove_file(path.as_path());
        }
    }
}

/// Opens merge sources for one pass: one [`SharedFile`] per *distinct*
/// spill file among the pass's disk runs. The handles are owned by the
/// returned sources (each cursor clones the shared handle), so dropping the
/// sources at the end of the pass closes them.
fn open_sources<'a>(runs: &'a [ReduceRun<'a>]) -> Result<Vec<RunSource<'a>>, EngineError> {
    let mut opened: Vec<(*const PathBuf, SharedFile)> = Vec::new();
    let mut sources = Vec::with_capacity(runs.len());
    for run in runs {
        match run {
            ReduceRun::Mem(buffer) => sources.push(RunSource::Mem(buffer)),
            ReduceRun::Disk { path, meta, .. } => {
                let ptr = Arc::as_ptr(path);
                let file = match opened.iter().find(|(p, _)| *p == ptr) {
                    Some((_, file)) => file.clone(),
                    None => {
                        let file = SharedFile::open(path)?;
                        opened.push((ptr, file.clone()));
                        file
                    }
                };
                sources.push(RunSource::Disk { file, meta });
            }
        }
    }
    Ok(sources)
}

fn run_reduce_task<J: Job>(
    job: &J,
    partition_runs: &[ReduceRun<'_>],
    task: usize,
    config: &EngineConfig,
    spill_space: Option<&SpillSpace>,
    counters: &Counters,
) -> Result<Vec<J::Output>, EngineError> {
    let fan_in = config.merge_fan_in.max(2);
    // Hierarchical pre-merge (the fd-pressure valve): while the partition
    // holds more *disk* runs than the fan-in (in-memory runs hold no file
    // handles and never trigger it), merge adjacent groups — each capped
    // at `fan_in` disk runs, interleaved memory runs riding along for
    // free — into intermediate on-disk runs, closing each group's file
    // handles before the next group opens. Merging *adjacent* groups and
    // keeping group order preserves the global (key bytes, run sequence)
    // order, so the final output is byte-identical to a single flat merge.
    // Without an active spill path every run is in memory, so one flat
    // merge is used regardless.
    let mut runs: Vec<ReduceRun<'_>> = partition_runs.to_vec();
    let mut round = 0u32;
    while count_disk_runs(&runs) > fan_in {
        let Some(space) = spill_space else { break };
        let mut next: Vec<ReduceRun<'_>> = Vec::new();
        let mut group_start = 0usize;
        let mut group_idx = 0usize;
        while group_start < runs.len() {
            // Extend the group until it holds `fan_in` disk runs.
            let mut end = group_start;
            let mut disk = 0usize;
            while end < runs.len() && disk < fan_in {
                if matches!(runs[end], ReduceRun::Disk { .. }) {
                    disk += 1;
                }
                end += 1;
            }
            let group = &runs[group_start..end];
            if disk < fan_in {
                // The trailing partial group already fits one merge:
                // pass its runs through untouched (no pointless disk
                // round-trip for, say, a tail of in-memory runs).
                next.extend(group.iter().cloned());
                group_start = end;
                continue;
            }
            let pass_started = Instant::now();
            let sources = open_sources(group)?;
            let mut merger = Merger::new(&sources)?;
            Counters::add(&counters.merged_runs, merger.num_runs());
            let path = space.merge_file(task, round, group_idx);
            let mut writer = RunStreamWriter::create(&path, config.spill_codec)?;
            let mut key = Vec::new();
            let mut value = Vec::new();
            if config.use_combiner {
                // Merge-time combine (Hadoop's merge-side combiner): a pass
                // materializes each key's group anyway, so collapsing it
                // here means later rounds copy the combined pairs instead
                // of re-merging every original one — low-σ shuffles shrink
                // round over round instead of staying disk-bound. Combiners
                // are associative and regrouping-insensitive by contract,
                // so the final reduce sees equivalent value streams.
                while let Some(k) = merger.peek_key() {
                    key.clear();
                    key.extend_from_slice(k);
                    let mut values: Vec<J::Value> = Vec::new();
                    while merger.peek_key() == Some(key.as_slice()) {
                        merger.pop_value_into(&mut value)?;
                        values.push(job.decode_value(&value));
                    }
                    let before = values.len();
                    let combined = job.combine(&job.decode_key(&key), values);
                    Counters::add(
                        &counters.merged_combined_pairs,
                        before.saturating_sub(combined.len()) as u64,
                    );
                    for v in &combined {
                        value.clear();
                        job.encode_value(v, &mut value);
                        writer.push(&key, &value)?;
                    }
                }
            } else {
                while let Some(k) = merger.peek_key() {
                    key.clear();
                    key.extend_from_slice(k);
                    merger.pop_value_into(&mut value)?;
                    writer.push(&key, &value)?;
                }
            }
            let meta = writer.finish(task as u32)?;
            Counters::add(&counters.merge_passes, 1);
            // A child span of the ambient reduce-task span (the worker
            // entered it around this call).
            lash_obs::global().observe_span(
                "mapreduce.merge_pass",
                pass_started.elapsed(),
                &[("round", round.into()), ("group", group_idx.into())],
            );
            drop(merger);
            drop(sources);
            // The group's own intermediates were consumed exactly once.
            remove_temp_runs(group);
            if meta.records == 0 {
                // A combiner that eliminated every pair leaves nothing to
                // merge (runs are never empty — see `DiskCursor::open`).
                let _ = std::fs::remove_file(&path);
            } else {
                next.push(ReduceRun::Disk {
                    path: Arc::new(path),
                    meta,
                    temp: true,
                });
            }
            group_start = end;
            group_idx += 1;
        }
        runs = next;
        round += 1;
    }

    // An RAII span, not an after-the-fact observation: the reduce calls
    // run inside this loop, so their `mine.partition`-style spans must
    // parent under the merge for self times to tile the task.
    let merge_span = lash_obs::span!("mapreduce.merge", runs = runs.len());
    let sources = open_sources(&runs)?;
    let mut merger = Merger::new(&sources)?;
    Counters::add(&counters.merged_runs, merger.num_runs());
    let mut out = Vec::new();
    let mut groups = 0u64;
    let mut records = 0u64;
    let mut key_bytes: Vec<u8> = Vec::new();
    let mut value_buf: Vec<u8> = Vec::new();
    loop {
        match merger.peek_key() {
            None => break,
            Some(k) => {
                key_bytes.clear();
                key_bytes.extend_from_slice(k);
            }
        }
        groups += 1;
        let key = job.decode_key(&key_bytes);
        let mut error: Option<EngineError> = None;
        {
            let mut values = GroupValues {
                job,
                merger: &mut merger,
                key: &key_bytes,
                value_buf: &mut value_buf,
                records: &mut records,
                error: &mut error,
            };
            job.reduce(key, &mut values, &mut out);
            // Drain whatever the reducer did not consume so the merge sits
            // on the next group.
            for _ in values.by_ref() {}
        }
        if let Some(e) = error {
            return Err(e);
        }
    }
    Counters::add(&counters.reduce_input_groups, groups);
    Counters::add(&counters.reduce_input_records, records);
    Counters::add(&counters.reduce_output_records, out.len() as u64);
    drop(merge_span);
    // Close the final merge's handles, then drop its intermediate inputs:
    // this task is their only consumer.
    drop(merger);
    drop(sources);
    remove_temp_runs(&runs);
    Ok(out)
}

/// Splits `n` records into contiguous ranges of at most `split_size`.
fn split_ranges(n: usize, split_size: usize) -> Vec<std::ops::Range<usize>> {
    let size = split_size.max(1);
    if n == 0 {
        return Vec::new();
    }
    (0..n.div_ceil(size))
        .map(|i| i * size..((i + 1) * size).min(n))
        .collect()
}

/// Runs `count` tasks with a pull-based worker pool.
fn parallel_tasks<T, F>(count: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = parallelism.min(count).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                *slots[i].lock().expect("slot lock") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("task completed"))
        .collect()
}

/// Runs tasks in retry rounds. The closure returns `Ok(None)` to signal an
/// (injected) failure — such tasks are retried with an incremented attempt
/// number until `max_attempts` is exhausted — and `Err` for fatal engine
/// errors (spill I/O, corrupt runs), which abort the job.
///
/// `ctx` is the phase's trace context: each worker enters it around a task
/// so the per-task `mapreduce.map_task` / `mapreduce.reduce_task` spans
/// (and anything the task emits, like spill summaries) parent under the
/// phase span recorded by the caller.
fn run_with_retries<T, F>(
    count: usize,
    parallelism: usize,
    max_attempts: u32,
    phase: Phase,
    ctx: Option<lash_obs::trace::TraceCtx>,
    counters: &Counters,
    f: F,
) -> Result<Vec<T>, EngineError>
where
    T: Send,
    F: Fn(usize, u32) -> Result<Option<T>, EngineError> + Sync,
{
    let task_span_name = match phase {
        Phase::Map => "mapreduce.map_task",
        Phase::Reduce => "mapreduce.reduce_task",
    };
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let mut pending: Vec<(usize, u32)> = (0..count).map(|t| (t, 0)).collect();
    while !pending.is_empty() {
        let round: Vec<(usize, u32, Result<Option<T>, EngineError>)> =
            parallel_tasks(pending.len(), parallelism, |i| {
                let _trace = ctx.map(lash_obs::trace::enter);
                let (task, attempt) = pending[i];
                match phase {
                    Phase::Map => Counters::add(&counters.map_task_attempts, 1),
                    Phase::Reduce => Counters::add(&counters.reduce_task_attempts, 1),
                }
                let _task_span = lash_obs::span!(task_span_name, task = task, attempt = attempt);
                let out = f(task, attempt);
                if matches!(out, Ok(None)) {
                    match phase {
                        Phase::Map => Counters::add(&counters.failed_map_tasks, 1),
                        Phase::Reduce => Counters::add(&counters.failed_reduce_tasks, 1),
                    }
                }
                (task, attempt, out)
            });
        let mut next = Vec::new();
        for (task, attempt, out) in round {
            match out? {
                Some(t) => results[task] = Some(t),
                None => {
                    if attempt + 1 >= max_attempts {
                        return Err(EngineError::RetriesExhausted {
                            phase,
                            task,
                            attempts: attempt + 1,
                        });
                    }
                    next.push((task, attempt + 1));
                }
            }
        }
        pending = next;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("all tasks completed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FailurePlan;

    /// Word count used across the engine tests.
    struct WordCount;

    impl Job for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);

        fn map(&self, line: &String, emit: &mut Emitter<'_, Self>) {
            for w in line.split_whitespace() {
                emit.emit(w.to_owned(), 1);
            }
        }

        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }

        fn reduce(
            &self,
            key: String,
            values: impl Iterator<Item = u64>,
            out: &mut Vec<(String, u64)>,
        ) {
            out.push((key, values.sum()));
        }

        fn encode_key(&self, key: &String, buf: &mut Vec<u8>) {
            buf.extend_from_slice(key.as_bytes());
        }
        fn decode_key(&self, bytes: &[u8]) -> String {
            String::from_utf8(bytes.to_vec()).unwrap()
        }
        fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
            let mut v = *value;
            loop {
                let b = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    buf.push(b);
                    break;
                }
                buf.push(b | 0x80);
            }
        }
        fn decode_value(&self, bytes: &[u8]) -> u64 {
            let mut value = 0u64;
            let mut shift = 0;
            for &b in bytes {
                value |= ((b & 0x7f) as u64) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            value
        }
    }

    fn corpus() -> Vec<String> {
        vec![
            "the quick brown fox".into(),
            "jumps over the lazy dog".into(),
            "the dog barks".into(),
            "quick quick".into(),
        ]
    }

    fn sorted(mut v: Vec<(String, u64)>) -> Vec<(String, u64)> {
        v.sort();
        v
    }

    #[test]
    fn word_count_end_to_end() {
        let result = run_job(&WordCount, &corpus(), &EngineConfig::default()).unwrap();
        let out = sorted(result.outputs);
        let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|&(_, c)| c);
        assert_eq!(get("the"), Some(3));
        assert_eq!(get("quick"), Some(3));
        assert_eq!(get("dog"), Some(2));
        assert_eq!(get("fox"), Some(1));
        let m = &result.metrics.counters;
        assert_eq!(m.map_input_records, 4);
        assert_eq!(m.map_output_records, 14);
        assert_eq!(m.reduce_output_records as usize, out.len());
        assert!(m.map_output_bytes > 0);
        assert!(result.metrics.total_time >= result.metrics.map_time);
    }

    #[test]
    fn output_is_deterministic_across_parallelism() {
        let base = run_job(&WordCount, &corpus(), &EngineConfig::sequential())
            .unwrap()
            .outputs;
        for par in [2, 4, 8] {
            for split in [1, 2, 100] {
                let cfg = EngineConfig::default()
                    .with_parallelism(par)
                    .with_reduce_tasks(3)
                    .with_split_size(split);
                let got = run_job(&WordCount, &corpus(), &cfg).unwrap().outputs;
                assert_eq!(sorted(got), sorted(base.clone()), "par={par} split={split}");
            }
        }
    }

    #[test]
    fn spilled_shuffle_is_byte_identical_to_in_memory() {
        let in_memory = run_job(
            &WordCount,
            &corpus(),
            &EngineConfig::default()
                .with_reduce_tasks(3)
                .with_spill_threshold(None),
        )
        .unwrap();
        for threshold in [0usize, 1, 16, 64, 4096] {
            let spilled = run_job(
                &WordCount,
                &corpus(),
                &EngineConfig::default()
                    .with_reduce_tasks(3)
                    .with_split_size(2)
                    .with_spill_threshold(Some(threshold)),
            )
            .unwrap();
            // Identical outputs in identical (partition, key) order.
            assert_eq!(spilled.outputs, in_memory.outputs, "threshold {threshold}");
        }
    }

    #[test]
    fn zero_threshold_spills_everything_and_counts_it() {
        let cfg = EngineConfig::default()
            .with_split_size(1)
            .with_reduce_tasks(2)
            .with_spill_threshold(Some(0));
        let result = run_job(&WordCount, &corpus(), &cfg).unwrap();
        let c = &result.metrics.counters;
        assert!(c.spilled_bytes > 0);
        // Every record became its own run.
        assert_eq!(c.spilled_runs, c.map_output_records);
        assert!(c.merged_runs > 0);
        assert!(c.peak_resident_bytes > 0);
        // The spilled result still matches the clean one.
        let clean = run_job(
            &WordCount,
            &corpus(),
            &EngineConfig::sequential().with_spill_threshold(None),
        )
        .unwrap();
        assert_eq!(sorted(result.outputs), sorted(clean.outputs));
    }

    #[test]
    fn capped_fan_in_merges_hierarchically_and_identically() {
        // A corpus wide enough that per-record spilling produces far more
        // runs per partition than the tiny fan-in allows in one merge.
        let corpus: Vec<String> = (0..60)
            .map(|i| format!("w{} shared w{}", i % 7, (i + 3) % 7))
            .collect();
        let flat = run_job(
            &WordCount,
            &corpus,
            &EngineConfig::default()
                .with_reduce_tasks(2)
                .with_split_size(1)
                .with_spill_threshold(Some(0))
                .with_merge_fan_in(100_000),
        )
        .unwrap();
        // An uncapped fan-in needs no intermediate passes.
        assert_eq!(flat.metrics.counters.merge_passes, 0);
        for fan_in in [2usize, 3, 8] {
            let capped = run_job(
                &WordCount,
                &corpus,
                &EngineConfig::default()
                    .with_reduce_tasks(2)
                    .with_split_size(1)
                    .with_spill_threshold(Some(0))
                    .with_merge_fan_in(fan_in),
            )
            .unwrap();
            // Identical outputs in identical order despite the passes.
            assert_eq!(capped.outputs, flat.outputs, "fan_in {fan_in}");
            assert!(
                capped.metrics.counters.merge_passes > 0,
                "fan_in {fan_in} should force intermediate passes"
            );
        }
    }

    #[test]
    fn merge_time_combiner_collapses_pairs_and_keeps_results() {
        // Per-record spilling with a tiny fan-in forces hierarchical
        // passes whose groups hold many single-value runs of the same few
        // keys — exactly what the merge-time combiner collapses.
        let corpus: Vec<String> = (0..60)
            .map(|i| format!("w{} shared w{}", i % 7, (i + 3) % 7))
            .collect();
        let base = EngineConfig::default()
            .with_reduce_tasks(2)
            .with_split_size(1)
            .with_spill_threshold(Some(0))
            .with_merge_fan_in(2);
        let combined = run_job(&WordCount, &corpus, &base.clone().with_combiner(true)).unwrap();
        let plain = run_job(&WordCount, &corpus, &base.with_combiner(false)).unwrap();
        let clean = run_job(&WordCount, &corpus, &EngineConfig::sequential()).unwrap();
        assert_eq!(sorted(combined.outputs), sorted(clean.outputs.clone()));
        assert_eq!(sorted(plain.outputs), sorted(clean.outputs));
        assert!(combined.metrics.counters.merge_passes > 0);
        assert!(
            combined.metrics.counters.merged_combined_pairs > 0,
            "hierarchical passes should combine equal-key pairs"
        );
        assert_eq!(plain.metrics.counters.merged_combined_pairs, 0);
    }

    #[test]
    fn compressed_spills_shrink_spilled_bytes_but_not_results() {
        use crate::spill::SpillCodec;
        // Few distinct, long, shared-prefix words and a threshold that
        // batches dozens of records per run: the sorted runs are highly
        // front-codable. (Combiner off so the runs keep their duplicate
        // keys — the representative low-σ shuffle shape.)
        let corpus: Vec<String> = (0..200)
            .map(|i| format!("prefix-shared-word-{} prefix-shared-word-{}", i % 3, i % 5))
            .collect();
        let base = EngineConfig::default()
            .with_reduce_tasks(2)
            .with_combiner(false)
            .with_spill_threshold(Some(1024));
        let raw = run_job(
            &WordCount,
            &corpus,
            &base.clone().with_spill_codec(SpillCodec::Raw),
        )
        .unwrap();
        let gv = run_job(
            &WordCount,
            &corpus,
            &base.with_spill_codec(SpillCodec::GroupVarint),
        )
        .unwrap();
        // Identical outputs in identical (partition, key) order.
        assert_eq!(gv.outputs, raw.outputs);
        assert!(raw.metrics.counters.spilled_runs > 0, "threshold too high");
        assert!(
            gv.metrics.counters.spilled_bytes * 2 < raw.metrics.counters.spilled_bytes,
            "compressed spills should shrink spilled_bytes well below half ({} vs {})",
            gv.metrics.counters.spilled_bytes,
            raw.metrics.counters.spilled_bytes
        );
    }

    #[test]
    fn memory_runs_do_not_count_against_the_fan_in() {
        // 40 short lines stay in memory; only the 3 long ones exceed the
        // per-task buffer threshold and spill. Total runs per partition far
        // exceed the fan-in, but only disk runs hold file handles — so no
        // hierarchical pass (and no disk round-trip of the memory runs)
        // should happen.
        let mut corpus: Vec<String> = (0..40).map(|i| format!("w{}", i % 5)).collect();
        for _ in 0..3 {
            corpus.push("a-rather-long-word-that-overflows-the-buffer another word".into());
        }
        let cfg = EngineConfig::default()
            .with_reduce_tasks(1)
            .with_split_size(1)
            .with_spill_threshold(Some(24))
            .with_merge_fan_in(8);
        let result = run_job(&WordCount, &corpus, &cfg).unwrap();
        assert!(result.metrics.counters.spilled_runs > 0, "long lines spill");
        assert_eq!(result.metrics.counters.merge_passes, 0);
        let clean = run_job(&WordCount, &corpus, &EngineConfig::sequential()).unwrap();
        assert_eq!(sorted(result.outputs), sorted(clean.outputs));
    }

    #[test]
    fn fan_in_cap_without_spill_path_stays_flat() {
        // All-in-memory runs hold no file handles; a tiny fan-in must not
        // force disk passes (there is no spill dir to write them to).
        let cfg = EngineConfig::default()
            .with_split_size(1)
            .with_spill_threshold(None)
            .with_merge_fan_in(2);
        let result = run_job(&WordCount, &corpus(), &cfg).unwrap();
        assert_eq!(result.metrics.counters.merge_passes, 0);
        let clean = run_job(&WordCount, &corpus(), &EngineConfig::sequential()).unwrap();
        assert_eq!(sorted(result.outputs), sorted(clean.outputs));
    }

    #[test]
    fn in_memory_path_reports_no_spills() {
        let cfg = EngineConfig::default().with_spill_threshold(None);
        let result = run_job(&WordCount, &corpus(), &cfg).unwrap();
        let c = &result.metrics.counters;
        assert_eq!(c.spilled_bytes, 0);
        assert_eq!(c.spilled_runs, 0);
        // In-memory runs still feed the reduce merges.
        assert!(c.merged_runs > 0);
    }

    #[test]
    fn combiner_reduces_shuffled_bytes_but_not_results() {
        // Pinned in-memory: with per-record spilling the combiner never sees
        // more than one value at a time, so the byte saving disappears.
        let cfg_on = EngineConfig::sequential()
            .with_split_size(1)
            .with_combiner(true)
            .with_spill_threshold(None);
        let cfg_off = EngineConfig::sequential()
            .with_split_size(1)
            .with_combiner(false)
            .with_spill_threshold(None);
        let on = run_job(&WordCount, &corpus(), &cfg_on).unwrap();
        let off = run_job(&WordCount, &corpus(), &cfg_off).unwrap();
        assert_eq!(sorted(on.outputs), sorted(off.outputs));
        assert!(
            on.metrics.counters.map_output_bytes < off.metrics.counters.map_output_bytes,
            "combiner should shrink the shuffle ({} vs {})",
            on.metrics.counters.map_output_bytes,
            off.metrics.counters.map_output_bytes
        );
        assert!(on.metrics.counters.combine_input_records > 0);
        // Pre-combine record counts are identical.
        assert_eq!(
            on.metrics.counters.map_output_records,
            off.metrics.counters.map_output_records
        );
    }

    #[test]
    fn injected_failures_are_retried_transparently() {
        let plan = FailurePlan::none()
            .fail_once(Phase::Map, 0)
            .fail_n_times(Phase::Reduce, 0, 2);
        let cfg = EngineConfig::default()
            .with_parallelism(2)
            .with_split_size(2)
            .with_reduce_tasks(2)
            .with_failures(plan);
        let result = run_job(&WordCount, &corpus(), &cfg).unwrap();
        let clean = run_job(&WordCount, &corpus(), &EngineConfig::sequential()).unwrap();
        assert_eq!(sorted(result.outputs), sorted(clean.outputs));
        assert_eq!(result.metrics.counters.failed_map_tasks, 1);
        assert_eq!(result.metrics.counters.failed_reduce_tasks, 2);
        assert!(result.metrics.counters.map_task_attempts >= 3);
    }

    #[test]
    fn injected_failures_are_retried_on_the_spill_path() {
        let plan = FailurePlan::none()
            .fail_once(Phase::Map, 1)
            .fail_once(Phase::Reduce, 0);
        let cfg = EngineConfig::default()
            .with_parallelism(2)
            .with_split_size(2)
            .with_reduce_tasks(2)
            .with_spill_threshold(Some(0))
            .with_failures(plan);
        let result = run_job(&WordCount, &corpus(), &cfg).unwrap();
        let clean = run_job(&WordCount, &corpus(), &EngineConfig::sequential()).unwrap();
        assert_eq!(sorted(result.outputs), sorted(clean.outputs));
        assert!(result.metrics.counters.spilled_runs > 0);
    }

    #[test]
    fn retries_exhausted_is_an_error() {
        let cfg = EngineConfig::default()
            .with_split_size(2)
            .with_failures(FailurePlan::none().fail_n_times(Phase::Map, 0, 10));
        let err = run_job(&WordCount, &corpus(), &cfg).unwrap_err();
        assert!(matches!(
            err,
            EngineError::RetriesExhausted {
                phase: Phase::Map,
                task: 0,
                ..
            }
        ));
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let result = run_job(&WordCount, &[], &EngineConfig::default()).unwrap();
        assert!(result.outputs.is_empty());
        assert_eq!(result.metrics.counters.map_input_records, 0);
        let result = run_job(
            &WordCount,
            &[],
            &EngineConfig::default().with_spill_threshold(Some(0)),
        )
        .unwrap();
        assert!(result.outputs.is_empty());
    }

    #[test]
    fn split_ranges_cover_input_exactly() {
        assert_eq!(split_ranges(0, 5), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(split_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(split_ranges(4, 4), vec![0..4]);
        assert_eq!(split_ranges(3, 100), vec![0..3]);
        // split_size 0 is clamped.
        assert_eq!(split_ranges(2, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn metrics_accumulate() {
        let a = run_job(&WordCount, &corpus(), &EngineConfig::sequential()).unwrap();
        let mut acc = JobMetrics::default();
        acc.accumulate(&a.metrics);
        acc.accumulate(&a.metrics);
        assert_eq!(
            acc.counters.map_input_records,
            2 * a.metrics.counters.map_input_records
        );
        // High-water marks take the max, not the sum.
        assert_eq!(
            acc.counters.peak_resident_bytes,
            a.metrics.counters.peak_resident_bytes
        );
        assert_eq!(acc.total_time, a.metrics.total_time * 2);
    }

    #[test]
    fn reducers_may_leave_values_unconsumed() {
        /// Consumes only the first value of each group.
        struct FirstOnly;
        impl Job for FirstOnly {
            type Input = String;
            type Key = String;
            type Value = u64;
            type Output = (String, u64);
            fn map(&self, line: &String, emit: &mut Emitter<'_, Self>) {
                for w in line.split_whitespace() {
                    emit.emit(w.to_owned(), 1);
                }
            }
            fn reduce(
                &self,
                key: String,
                mut values: impl Iterator<Item = u64>,
                out: &mut Vec<(String, u64)>,
            ) {
                out.push((key, values.next().unwrap_or(0)));
            }
            fn encode_key(&self, key: &String, buf: &mut Vec<u8>) {
                buf.extend_from_slice(key.as_bytes());
            }
            fn decode_key(&self, bytes: &[u8]) -> String {
                String::from_utf8(bytes.to_vec()).unwrap()
            }
            fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&value.to_le_bytes());
            }
            fn decode_value(&self, bytes: &[u8]) -> u64 {
                u64::from_le_bytes(bytes.try_into().unwrap())
            }
        }
        // Combiner off so groups genuinely hold multiple values.
        let cfg = EngineConfig::sequential().with_combiner(false);
        let result = run_job(&FirstOnly, &corpus(), &cfg).unwrap();
        // Every distinct word appears exactly once with value 1.
        assert!(result.outputs.iter().all(|(_, c)| *c == 1));
        assert_eq!(result.outputs.len(), 9);
    }
}
