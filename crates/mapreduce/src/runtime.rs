//! The execution engine: splits, task scheduling, retries, shuffle, and
//! per-phase timing.
//!
//! Execution proceeds in three synchronized phases so their wall-clock costs
//! can be reported separately (the paper's stacked map/shuffle/reduce bars):
//!
//! 1. **map** — input splits are processed by a pool of worker threads; each
//!    task buffers its output sorted by key, applies the combiner, and
//!    serializes into one byte buffer per reduce partition;
//! 2. **shuffle** — per reduce partition, the buffers from all map tasks are
//!    concatenated, parsed, sorted by key bytes, and grouped;
//! 3. **reduce** — the grouped partitions are decoded and reduced.
//!
//! Failed task attempts (via [`crate::FailurePlan`]) are retried in
//! subsequent scheduling rounds, up to `max_attempts`; retries are invisible
//! in the output, as in Hadoop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use std::sync::Mutex;

use crate::config::{ClusterConfig, Phase};
use crate::counters::{CounterSnapshot, Counters};
use crate::error::EngineError;
use crate::shuffle::{partition_of, write_record, GroupedPartition};
use crate::types::{Emitter, Job};

/// Wall-clock and counter metrics of one job run.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Map phase wall time.
    pub map_time: Duration,
    /// Shuffle (sort/group) phase wall time.
    pub shuffle_time: Duration,
    /// Reduce phase wall time.
    pub reduce_time: Duration,
    /// Total job wall time.
    pub total_time: Duration,
    /// Counter snapshot.
    pub counters: CounterSnapshot,
}

impl JobMetrics {
    /// Merges metrics of consecutive jobs (phase times add up).
    pub fn accumulate(&mut self, other: &JobMetrics) {
        self.map_time += other.map_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.total_time += other.total_time;
        let c = &mut self.counters;
        let o = &other.counters;
        c.map_input_records += o.map_input_records;
        c.map_output_records += o.map_output_records;
        c.map_output_bytes += o.map_output_bytes;
        c.map_output_materialized_bytes += o.map_output_materialized_bytes;
        c.combine_input_records += o.combine_input_records;
        c.combine_output_records += o.combine_output_records;
        c.reduce_input_groups += o.reduce_input_groups;
        c.reduce_input_records += o.reduce_input_records;
        c.reduce_output_records += o.reduce_output_records;
        c.map_task_attempts += o.map_task_attempts;
        c.reduce_task_attempts += o.reduce_task_attempts;
        c.failed_map_tasks += o.failed_map_tasks;
        c.failed_reduce_tasks += o.failed_reduce_tasks;
    }
}

/// Outputs plus metrics of a completed job.
#[derive(Debug)]
pub struct JobResult<O> {
    /// Reduce outputs, concatenated in reduce-partition order.
    pub outputs: Vec<O>,
    /// Run metrics.
    pub metrics: JobMetrics,
}

/// Runs `job` over `inputs` under `config`.
pub fn run_job<J: Job>(
    job: &J,
    inputs: &[J::Input],
    config: &ClusterConfig,
) -> Result<JobResult<J::Output>, EngineError> {
    let started = Instant::now();
    let counters = Counters::default();
    let num_parts = config.num_reduce_tasks.max(1);

    // ---- Map phase -------------------------------------------------------
    let map_started = Instant::now();
    let splits: Vec<std::ops::Range<usize>> = split_ranges(inputs.len(), config.split_size);
    let map_outputs = run_with_retries(
        splits.len(),
        config.map_parallelism,
        config.max_attempts,
        Phase::Map,
        &counters,
        |task, attempt| {
            if config.failure_plan.should_fail(Phase::Map, task, attempt) {
                return None;
            }
            Some(run_map_task(
                job,
                &inputs[splits[task].clone()],
                num_parts,
                config.use_combiner,
                &counters,
            ))
        },
    )?;
    let map_time = map_started.elapsed();

    // ---- Shuffle phase ---------------------------------------------------
    let shuffle_started = Instant::now();
    let grouped: Vec<Result<GroupedPartition, EngineError>> =
        parallel_tasks(num_parts, config.reduce_parallelism, |part| {
            let total: usize = map_outputs.iter().map(|m| m[part].len()).sum();
            let mut data = Vec::with_capacity(total);
            for m in &map_outputs {
                data.extend_from_slice(&m[part]);
            }
            GroupedPartition::build(data)
        });
    let mut partitions = Vec::with_capacity(num_parts);
    for g in grouped {
        partitions.push(g?);
    }
    let shuffle_time = shuffle_started.elapsed();

    // ---- Reduce phase ----------------------------------------------------
    let reduce_started = Instant::now();
    let reduce_outputs = run_with_retries(
        num_parts,
        config.reduce_parallelism,
        config.max_attempts,
        Phase::Reduce,
        &counters,
        |task, attempt| {
            if config
                .failure_plan
                .should_fail(Phase::Reduce, task, attempt)
            {
                return None;
            }
            Some(run_reduce_task(job, &partitions[task], &counters))
        },
    )?;
    let reduce_time = reduce_started.elapsed();

    let outputs: Vec<J::Output> = reduce_outputs.into_iter().flatten().collect();
    Counters::add(&counters.reduce_output_records, 0); // touch for empty jobs
    Ok(JobResult {
        outputs,
        metrics: JobMetrics {
            map_time,
            shuffle_time,
            reduce_time,
            total_time: started.elapsed(),
            counters: counters.snapshot(),
        },
    })
}

fn run_map_task<J: Job>(
    job: &J,
    records: &[J::Input],
    num_parts: usize,
    use_combiner: bool,
    counters: &Counters,
) -> Vec<Vec<u8>> {
    let mut buffer: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
    let mut emitted = 0u64;
    {
        let mut emitter = Emitter {
            buffer: &mut buffer,
            records: &mut emitted,
        };
        for record in records {
            job.map(record, &mut emitter);
        }
    }
    Counters::add(&counters.map_input_records, records.len() as u64);
    Counters::add(&counters.map_output_records, emitted);

    let mut parts: Vec<Vec<u8>> = vec![Vec::new(); num_parts];
    let mut kbuf = Vec::new();
    let mut vbuf = Vec::new();
    let mut payload = 0u64;
    let mut materialized = 0u64;
    let mut combine_in = 0u64;
    let mut combine_out = 0u64;
    for (key, mut values) in buffer {
        if use_combiner {
            combine_in += values.len() as u64;
            values = job.combine(&key, values);
            combine_out += values.len() as u64;
        }
        kbuf.clear();
        job.encode_key(&key, &mut kbuf);
        let part = partition_of(&kbuf, num_parts);
        for value in &values {
            vbuf.clear();
            job.encode_value(value, &mut vbuf);
            let (p, m) = write_record(&mut parts[part], &kbuf, &vbuf);
            payload += p;
            materialized += m;
        }
    }
    Counters::add(&counters.map_output_bytes, payload);
    Counters::add(&counters.map_output_materialized_bytes, materialized);
    Counters::add(&counters.combine_input_records, combine_in);
    Counters::add(&counters.combine_output_records, combine_out);
    parts
}

fn run_reduce_task<J: Job>(
    job: &J,
    partition: &GroupedPartition,
    counters: &Counters,
) -> Vec<J::Output> {
    let mut out = Vec::new();
    let mut groups = 0u64;
    let mut records = 0u64;
    for i in 0..partition.groups.len() {
        let key = job.decode_key(partition.key_bytes(i));
        let values: Vec<J::Value> = partition
            .value_bytes(i)
            .map(|b| job.decode_value(b))
            .collect();
        groups += 1;
        records += values.len() as u64;
        job.reduce(key, values, &mut out);
    }
    Counters::add(&counters.reduce_input_groups, groups);
    Counters::add(&counters.reduce_input_records, records);
    Counters::add(&counters.reduce_output_records, out.len() as u64);
    out
}

/// Splits `n` records into contiguous ranges of at most `split_size`.
fn split_ranges(n: usize, split_size: usize) -> Vec<std::ops::Range<usize>> {
    let size = split_size.max(1);
    if n == 0 {
        return Vec::new();
    }
    (0..n.div_ceil(size))
        .map(|i| i * size..((i + 1) * size).min(n))
        .collect()
}

/// Runs `count` tasks with a pull-based worker pool.
fn parallel_tasks<T, F>(count: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = parallelism.min(count).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                *slots[i].lock().expect("slot lock") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("task completed"))
        .collect()
}

/// Runs tasks in retry rounds. The closure returns `None` to signal an
/// (injected) failure; such tasks are retried with an incremented attempt
/// number until `max_attempts` is exhausted.
fn run_with_retries<T, F>(
    count: usize,
    parallelism: usize,
    max_attempts: u32,
    phase: Phase,
    counters: &Counters,
    f: F,
) -> Result<Vec<T>, EngineError>
where
    T: Send,
    F: Fn(usize, u32) -> Option<T> + Sync,
{
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let mut pending: Vec<(usize, u32)> = (0..count).map(|t| (t, 0)).collect();
    while !pending.is_empty() {
        let round: Vec<(usize, u32, Option<T>)> = parallel_tasks(pending.len(), parallelism, |i| {
            let (task, attempt) = pending[i];
            match phase {
                Phase::Map => Counters::add(&counters.map_task_attempts, 1),
                Phase::Reduce => Counters::add(&counters.reduce_task_attempts, 1),
            }
            let out = f(task, attempt);
            if out.is_none() {
                match phase {
                    Phase::Map => Counters::add(&counters.failed_map_tasks, 1),
                    Phase::Reduce => Counters::add(&counters.failed_reduce_tasks, 1),
                }
            }
            (task, attempt, out)
        });
        let mut next = Vec::new();
        for (task, attempt, out) in round {
            match out {
                Some(t) => results[task] = Some(t),
                None => {
                    if attempt + 1 >= max_attempts {
                        return Err(EngineError::RetriesExhausted {
                            phase,
                            task,
                            attempts: attempt + 1,
                        });
                    }
                    next.push((task, attempt + 1));
                }
            }
        }
        pending = next;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("all tasks completed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FailurePlan;

    /// Word count used across the engine tests.
    struct WordCount;

    impl Job for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);

        fn map(&self, line: &String, emit: &mut Emitter<'_, String, u64>) {
            for w in line.split_whitespace() {
                emit.emit(w.to_owned(), 1);
            }
        }

        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }

        fn reduce(&self, key: String, values: Vec<u64>, out: &mut Vec<(String, u64)>) {
            out.push((key, values.into_iter().sum()));
        }

        fn encode_key(&self, key: &String, buf: &mut Vec<u8>) {
            buf.extend_from_slice(key.as_bytes());
        }
        fn decode_key(&self, bytes: &[u8]) -> String {
            String::from_utf8(bytes.to_vec()).unwrap()
        }
        fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
            let mut v = *value;
            loop {
                let b = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    buf.push(b);
                    break;
                }
                buf.push(b | 0x80);
            }
        }
        fn decode_value(&self, bytes: &[u8]) -> u64 {
            let mut value = 0u64;
            let mut shift = 0;
            for &b in bytes {
                value |= ((b & 0x7f) as u64) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            value
        }
    }

    fn corpus() -> Vec<String> {
        vec![
            "the quick brown fox".into(),
            "jumps over the lazy dog".into(),
            "the dog barks".into(),
            "quick quick".into(),
        ]
    }

    fn sorted(mut v: Vec<(String, u64)>) -> Vec<(String, u64)> {
        v.sort();
        v
    }

    #[test]
    fn word_count_end_to_end() {
        let result = run_job(&WordCount, &corpus(), &ClusterConfig::default()).unwrap();
        let out = sorted(result.outputs);
        let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|&(_, c)| c);
        assert_eq!(get("the"), Some(3));
        assert_eq!(get("quick"), Some(3));
        assert_eq!(get("dog"), Some(2));
        assert_eq!(get("fox"), Some(1));
        let m = &result.metrics.counters;
        assert_eq!(m.map_input_records, 4);
        assert_eq!(m.map_output_records, 14);
        assert_eq!(m.reduce_output_records as usize, out.len());
        assert!(m.map_output_bytes > 0);
        assert!(result.metrics.total_time >= result.metrics.map_time);
    }

    #[test]
    fn output_is_deterministic_across_parallelism() {
        let base = run_job(&WordCount, &corpus(), &ClusterConfig::sequential())
            .unwrap()
            .outputs;
        for par in [2, 4, 8] {
            for split in [1, 2, 100] {
                let cfg = ClusterConfig::default()
                    .with_parallelism(par)
                    .with_reduce_tasks(3)
                    .with_split_size(split);
                let got = run_job(&WordCount, &corpus(), &cfg).unwrap().outputs;
                assert_eq!(sorted(got), sorted(base.clone()), "par={par} split={split}");
            }
        }
    }

    #[test]
    fn combiner_reduces_shuffled_bytes_but_not_results() {
        let cfg_on = ClusterConfig::sequential()
            .with_split_size(1)
            .with_combiner(true);
        let cfg_off = ClusterConfig::sequential()
            .with_split_size(1)
            .with_combiner(false);
        let on = run_job(&WordCount, &corpus(), &cfg_on).unwrap();
        let off = run_job(&WordCount, &corpus(), &cfg_off).unwrap();
        assert_eq!(sorted(on.outputs), sorted(off.outputs));
        assert!(
            on.metrics.counters.map_output_bytes < off.metrics.counters.map_output_bytes,
            "combiner should shrink the shuffle ({} vs {})",
            on.metrics.counters.map_output_bytes,
            off.metrics.counters.map_output_bytes
        );
        assert!(on.metrics.counters.combine_input_records > 0);
        // Pre-combine record counts are identical.
        assert_eq!(
            on.metrics.counters.map_output_records,
            off.metrics.counters.map_output_records
        );
    }

    #[test]
    fn injected_failures_are_retried_transparently() {
        let plan = FailurePlan::none()
            .fail_once(Phase::Map, 0)
            .fail_n_times(Phase::Reduce, 0, 2);
        let cfg = ClusterConfig::default()
            .with_parallelism(2)
            .with_split_size(2)
            .with_reduce_tasks(2)
            .with_failures(plan);
        let result = run_job(&WordCount, &corpus(), &cfg).unwrap();
        let clean = run_job(&WordCount, &corpus(), &ClusterConfig::sequential()).unwrap();
        assert_eq!(sorted(result.outputs), sorted(clean.outputs));
        assert_eq!(result.metrics.counters.failed_map_tasks, 1);
        assert_eq!(result.metrics.counters.failed_reduce_tasks, 2);
        assert!(result.metrics.counters.map_task_attempts >= 3);
    }

    #[test]
    fn retries_exhausted_is_an_error() {
        let cfg = ClusterConfig::default()
            .with_split_size(2)
            .with_failures(FailurePlan::none().fail_n_times(Phase::Map, 0, 10));
        let err = run_job(&WordCount, &corpus(), &cfg).unwrap_err();
        assert!(matches!(
            err,
            EngineError::RetriesExhausted {
                phase: Phase::Map,
                task: 0,
                ..
            }
        ));
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let result = run_job(&WordCount, &[], &ClusterConfig::default()).unwrap();
        assert!(result.outputs.is_empty());
        assert_eq!(result.metrics.counters.map_input_records, 0);
    }

    #[test]
    fn split_ranges_cover_input_exactly() {
        assert_eq!(split_ranges(0, 5), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(split_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(split_ranges(4, 4), vec![0..4]);
        assert_eq!(split_ranges(3, 100), vec![0..3]);
        // split_size 0 is clamped.
        assert_eq!(split_ranges(2, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn metrics_accumulate() {
        let a = run_job(&WordCount, &corpus(), &ClusterConfig::sequential()).unwrap();
        let mut acc = JobMetrics::default();
        acc.accumulate(&a.metrics);
        acc.accumulate(&a.metrics);
        assert_eq!(
            acc.counters.map_input_records,
            2 * a.metrics.counters.map_input_records
        );
        assert_eq!(acc.total_time, a.metrics.total_time * 2);
    }
}
