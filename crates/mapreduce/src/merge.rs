//! Reduce-side k-way merge of sorted runs.
//!
//! Each reduce partition's input is a list of sorted runs — in-memory
//! [`RunBuffer`]s from unspilled map tasks and on-disk runs behind
//! [`DiskCursor`]s — ordered by (map task, spill sequence). The merge is a
//! binary heap keyed by (key bytes, run sequence): ascending key order with
//! run order breaking ties, which reproduces byte-for-byte the value order
//! of a single global stable sort (map task order, then emission order).
//! Groups are *streamed*: the engine hands each reducer an iterator that
//! decodes values straight off the merge, so no partition, group, or value
//! list is ever materialized.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::EngineError;
use crate::shuffle::RunBuffer;
use crate::spill::{DiskCursor, RunMeta, SharedFile};

/// One sorted run feeding a reduce merge.
pub enum RunSource<'a> {
    /// An in-memory run (a finalized, sorted map-task partition buffer).
    Mem(&'a RunBuffer),
    /// An on-disk run inside a spill file.
    Disk {
        /// The spill file holding the run (one shared handle per file
        /// within a merge pass, no matter how many of the pass's runs it
        /// holds; the runtime opens handles per pass and closes them
        /// between passes).
        file: SharedFile,
        /// The run's location inside the file.
        meta: &'a RunMeta,
    },
}

/// A positioned cursor over one run.
enum Cursor<'a> {
    Mem { run: &'a RunBuffer, rec: usize },
    Disk(DiskCursor),
}

impl Cursor<'_> {
    fn key(&self) -> &[u8] {
        match self {
            Cursor::Mem { run, rec } => run.key(&run.recs[*rec]),
            Cursor::Disk(c) => c.key(),
        }
    }

    fn value(&self) -> &[u8] {
        match self {
            Cursor::Mem { run, rec } => run.value(&run.recs[*rec]),
            Cursor::Disk(c) => c.value(),
        }
    }

    fn advance(&mut self) -> Result<bool, EngineError> {
        match self {
            Cursor::Mem { run, rec } => {
                *rec += 1;
                Ok(*rec < run.recs.len())
            }
            Cursor::Disk(c) => c.advance(),
        }
    }
}

/// Heap entry: the current key of one cursor. `BinaryHeap` is a max-heap,
/// so the ordering is reversed to pop the smallest (key, seq) first.
struct HeapEntry {
    key: Vec<u8>,
    /// Global run sequence (map task order, then spill order) — the
    /// stability tie-break for equal keys.
    seq: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the heap's "greatest" entry is the smallest (key, seq).
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A k-way merge over sorted runs, yielding records in (key bytes, run
/// sequence) order.
pub struct Merger<'a> {
    cursors: Vec<Cursor<'a>>,
    heap: BinaryHeap<HeapEntry>,
    /// Number of runs merged (for the `merged_runs` counter).
    runs: u64,
}

impl<'a> Merger<'a> {
    /// Opens every source and positions the merge on the smallest record.
    /// Sources must be passed in run-sequence order.
    pub fn new(sources: &[RunSource<'a>]) -> Result<Merger<'a>, EngineError> {
        let mut cursors = Vec::with_capacity(sources.len());
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for source in sources {
            let cursor = match source {
                RunSource::Mem(run) => {
                    if run.is_empty() {
                        continue;
                    }
                    Cursor::Mem { run, rec: 0 }
                }
                RunSource::Disk { file, meta } => Cursor::Disk(DiskCursor::open(file, meta)?),
            };
            let seq = cursors.len() as u32;
            heap.push(HeapEntry {
                key: cursor.key().to_vec(),
                seq,
            });
            cursors.push(cursor);
        }
        let runs = cursors.len() as u64;
        Ok(Merger {
            cursors,
            heap,
            runs,
        })
    }

    /// Number of non-empty runs feeding this merge.
    pub fn num_runs(&self) -> u64 {
        self.runs
    }

    /// The key bytes of the smallest unconsumed record, if any.
    pub fn peek_key(&self) -> Option<&[u8]> {
        self.heap.peek().map(|e| e.key.as_slice())
    }

    /// Pops the smallest record: copies its value bytes into `value` and
    /// advances the merge.
    pub fn pop_value_into(&mut self, value: &mut Vec<u8>) -> Result<(), EngineError> {
        let entry = self.heap.pop().expect("pop on empty merge");
        let cursor = &mut self.cursors[entry.seq as usize];
        value.clear();
        value.extend_from_slice(cursor.value());
        if cursor.advance()? {
            let mut key = entry.key;
            key.clear();
            key.extend_from_slice(cursor.key());
            self.heap.push(HeapEntry {
                key,
                seq: entry.seq,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::{SpillCodec, SpillSpace, SpillWriter};

    fn mem_run(pairs: &[(&[u8], &[u8])]) -> RunBuffer {
        let mut run = RunBuffer::default();
        for (k, v) in pairs {
            run.push(k, v);
        }
        run.sort();
        run
    }

    fn drain(merger: &mut Merger<'_>) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        let mut value = Vec::new();
        while let Some(key) = merger.peek_key() {
            let key = key.to_vec();
            merger.pop_value_into(&mut value).unwrap();
            out.push((key, value.clone()));
        }
        out
    }

    #[test]
    fn merges_memory_runs_in_key_then_sequence_order() {
        let a = mem_run(&[(b"apple", b"a1"), (b"pear", b"a2")]);
        let b = mem_run(&[(b"apple", b"b1"), (b"zebra", b"b2")]);
        let sources = vec![RunSource::Mem(&a), RunSource::Mem(&b)];
        let mut merger = Merger::new(&sources).unwrap();
        assert_eq!(merger.num_runs(), 2);
        assert_eq!(
            drain(&mut merger),
            vec![
                (b"apple".to_vec(), b"a1".to_vec()),
                (b"apple".to_vec(), b"b1".to_vec()),
                (b"pear".to_vec(), b"a2".to_vec()),
                (b"zebra".to_vec(), b"b2".to_vec()),
            ]
        );
    }

    #[test]
    fn empty_memory_runs_are_skipped() {
        let empty = RunBuffer::default();
        let a = mem_run(&[(b"k", b"v")]);
        let sources = vec![RunSource::Mem(&empty), RunSource::Mem(&a)];
        let mut merger = Merger::new(&sources).unwrap();
        assert_eq!(merger.num_runs(), 1);
        assert_eq!(drain(&mut merger).len(), 1);
    }

    #[test]
    fn merges_disk_and_memory_runs_together() {
        for codec in [SpillCodec::Raw, SpillCodec::GroupVarint] {
            let space = SpillSpace::create(None).unwrap();
            let mut writer = SpillWriter::create(space.task_file(0, 0), codec).unwrap();
            let spilled = mem_run(&[(b"a", b"disk1"), (b"m", b"disk2")]);
            let meta = writer.write_run(0, &spilled).unwrap();
            let file = writer.finish().unwrap();
            let mem = mem_run(&[(b"a", b"mem1"), (b"z", b"mem2")]);
            let sources = vec![
                RunSource::Disk {
                    file: SharedFile::open(&file).unwrap(),
                    meta: &meta,
                },
                RunSource::Mem(&mem),
            ];
            let mut merger = Merger::new(&sources).unwrap();
            assert_eq!(
                drain(&mut merger),
                vec![
                    (b"a".to_vec(), b"disk1".to_vec()),
                    (b"a".to_vec(), b"mem1".to_vec()),
                    (b"m".to_vec(), b"disk2".to_vec()),
                    (b"z".to_vec(), b"mem2".to_vec()),
                ],
                "{codec:?}"
            );
        }
    }
}
