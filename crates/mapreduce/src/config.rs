//! Engine configuration and deterministic failure injection.

use std::collections::HashSet;
use std::path::PathBuf;

use crate::spill::SpillCodec;

/// Job phase, for counters and failure injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Map tasks.
    Map,
    /// Reduce tasks (including their shuffle fetch).
    Reduce,
}

/// A deterministic plan of injected task failures.
///
/// Hadoop re-executes failed tasks transparently; the engine reproduces that
/// contract so pipelines can be tested under failure. A spec `(phase, task,
/// attempt)` makes that attempt fail before doing any work.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    specs: HashSet<(Phase, usize, u32)>,
}

impl FailurePlan {
    /// No injected failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails the first attempt of the given task.
    pub fn fail_once(mut self, phase: Phase, task: usize) -> Self {
        self.specs.insert((phase, task, 0));
        self
    }

    /// Fails a specific attempt of the given task.
    pub fn fail_attempt(mut self, phase: Phase, task: usize, attempt: u32) -> Self {
        self.specs.insert((phase, task, attempt));
        self
    }

    /// Fails the first `n` attempts of the given task.
    pub fn fail_n_times(mut self, phase: Phase, task: usize, n: u32) -> Self {
        for attempt in 0..n {
            self.specs.insert((phase, task, attempt));
        }
        self
    }

    /// True if this attempt should fail.
    pub fn should_fail(&self, phase: Phase, task: usize, attempt: u32) -> bool {
        self.specs.contains(&(phase, task, attempt))
    }

    /// True if the plan contains no failures.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Environment variable overriding the default spill threshold, so a test
/// run can force every job onto the out-of-core path (`0` spills after every
/// record). CI runs the whole workspace with this set to `0`.
pub const SPILL_THRESHOLD_ENV: &str = "LASH_SPILL_THRESHOLD";

/// Engine configuration: the in-process stand-in for cluster topology plus
/// the out-of-core shuffle knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent map tasks ("map slots"). The paper's cluster runs 10
    /// workers × 8 slots; here each slot is a thread.
    pub map_parallelism: usize,
    /// Concurrent reduce tasks.
    pub reduce_parallelism: usize,
    /// Number of reduce partitions (= reduce tasks).
    pub num_reduce_tasks: usize,
    /// Records per map task (input split size).
    pub split_size: usize,
    /// Whether to run the job's combiner on the map side.
    pub use_combiner: bool,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: u32,
    /// Injected failures.
    pub failure_plan: FailurePlan,
    /// Map-side sort-buffer budget in serialized bytes. `None` keeps the
    /// whole shuffle in memory (the fast path); `Some(n)` makes a map task
    /// spill a sorted run to disk whenever its buffered output exceeds `n`
    /// bytes (`Some(0)` spills after every record). Reduce tasks k-way merge
    /// the runs, streaming groups, so reduce-side memory stays bounded by
    /// the merge cursors instead of the partition size.
    pub spill_threshold_bytes: Option<usize>,
    /// Directory for spill files. `None` uses the system temp directory.
    /// Each job run creates (and removes on completion) a unique
    /// subdirectory, so concurrent jobs never collide.
    pub spill_dir: Option<PathBuf>,
    /// Maximum **on-disk** runs a reduce task merges — and therefore
    /// spill-file handles it holds open — at once (Hadoop's
    /// `io.sort.factor`). A partition with more disk runs is merged
    /// hierarchically: adjacent groups of at most this many disk runs
    /// (interleaved in-memory runs ride along for free — they hold no file
    /// handles) are pre-merged into intermediate on-disk runs, counted by
    /// `merge_passes` and deleted as soon as the next pass consumes them.
    /// Requires the spill path to be active; an all-in-memory shuffle
    /// merges in one pass regardless. Clamped to ≥ 2.
    pub merge_fan_in: usize,
    /// How spill chunks are encoded on disk: [`SpillCodec::Raw`] stores
    /// framed records verbatim, [`SpillCodec::GroupVarint`] front-codes the
    /// sorted keys and group-varint-compresses the length columns, shrinking
    /// `spilled_bytes` without changing any job output. Defaults to the
    /// `LASH_SPILL_CODEC` environment variable (`raw` when unset).
    pub spill_codec: SpillCodec,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        EngineConfig {
            map_parallelism: threads,
            reduce_parallelism: threads,
            num_reduce_tasks: threads * 2,
            split_size: 16 * 1024,
            use_combiner: true,
            max_attempts: 4,
            failure_plan: FailurePlan::none(),
            spill_threshold_bytes: spill_threshold_from_env(),
            spill_dir: None,
            merge_fan_in: 64,
            spill_codec: SpillCodec::from_env(),
        }
    }
}

/// Reads [`SPILL_THRESHOLD_ENV`]; unset or empty means "in memory".
///
/// A set-but-unparsable value panics: the variable exists to force test
/// runs through the spill path, and a typo silently falling back to the
/// in-memory path would defeat exactly that.
fn spill_threshold_from_env() -> Option<usize> {
    let value = std::env::var(SPILL_THRESHOLD_ENV).ok()?;
    let value = value.trim();
    if value.is_empty() {
        return None;
    }
    match value.parse::<usize>() {
        Ok(n) => Some(n),
        Err(e) => panic!("{SPILL_THRESHOLD_ENV}={value:?} is not a byte count: {e}"),
    }
}

impl EngineConfig {
    /// A single-threaded configuration (useful for determinism tests).
    pub fn sequential() -> Self {
        EngineConfig {
            map_parallelism: 1,
            reduce_parallelism: 1,
            num_reduce_tasks: 1,
            ..Default::default()
        }
    }

    /// Sets both map and reduce parallelism — the "number of machines" knob
    /// used by the scalability experiments (Fig. 6).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.map_parallelism = n.max(1);
        self.reduce_parallelism = n.max(1);
        self.num_reduce_tasks = self.num_reduce_tasks.max(n);
        self
    }

    /// Sets the number of reduce partitions.
    pub fn with_reduce_tasks(mut self, n: usize) -> Self {
        self.num_reduce_tasks = n.max(1);
        self
    }

    /// Sets the input split size.
    pub fn with_split_size(mut self, n: usize) -> Self {
        self.split_size = n.max(1);
        self
    }

    /// Enables or disables the combiner.
    pub fn with_combiner(mut self, on: bool) -> Self {
        self.use_combiner = on;
        self
    }

    /// Installs a failure plan.
    pub fn with_failures(mut self, plan: FailurePlan) -> Self {
        self.failure_plan = plan;
        self
    }

    /// Sets the spill threshold: `None` for the all-in-memory shuffle,
    /// `Some(n)` to spill sorted runs once a map task buffers more than `n`
    /// serialized bytes.
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        self.spill_threshold_bytes = threshold;
        self
    }

    /// Sets the directory spill files are created under.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Sets the reduce-side merge fan-in: the maximum runs (and spill-file
    /// handles) one reduce task merges at once (clamped to ≥ 2).
    pub fn with_merge_fan_in(mut self, n: usize) -> Self {
        self.merge_fan_in = n.max(2);
        self
    }

    /// Sets the spill-chunk codec (overriding the `LASH_SPILL_CODEC`
    /// default).
    pub fn with_spill_codec(mut self, codec: SpillCodec) -> Self {
        self.spill_codec = codec;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_plan_matches_specs() {
        let plan = FailurePlan::none()
            .fail_once(Phase::Map, 3)
            .fail_n_times(Phase::Reduce, 1, 2);
        assert!(plan.should_fail(Phase::Map, 3, 0));
        assert!(!plan.should_fail(Phase::Map, 3, 1));
        assert!(plan.should_fail(Phase::Reduce, 1, 0));
        assert!(plan.should_fail(Phase::Reduce, 1, 1));
        assert!(!plan.should_fail(Phase::Reduce, 1, 2));
        assert!(!plan.should_fail(Phase::Map, 0, 0));
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn config_builders() {
        let cfg = EngineConfig::sequential()
            .with_parallelism(4)
            .with_reduce_tasks(7)
            .with_split_size(100)
            .with_combiner(false)
            .with_spill_threshold(Some(4096))
            .with_spill_dir("/tmp/lash-spill-test")
            .with_spill_codec(SpillCodec::GroupVarint);
        assert_eq!(cfg.map_parallelism, 4);
        assert_eq!(cfg.reduce_parallelism, 4);
        assert_eq!(cfg.num_reduce_tasks, 7);
        assert_eq!(cfg.split_size, 100);
        assert!(!cfg.use_combiner);
        assert_eq!(cfg.spill_threshold_bytes, Some(4096));
        assert_eq!(cfg.spill_codec, SpillCodec::GroupVarint);
        assert_eq!(
            cfg.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/lash-spill-test"))
        );
        // Parallelism is clamped to at least 1.
        assert_eq!(
            EngineConfig::default().with_parallelism(0).map_parallelism,
            1
        );
    }
}
