//! Cluster configuration and deterministic failure injection.

use std::collections::HashSet;

/// Job phase, for counters and failure injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Map tasks.
    Map,
    /// Reduce tasks (including their shuffle fetch).
    Reduce,
}

/// A deterministic plan of injected task failures.
///
/// Hadoop re-executes failed tasks transparently; the engine reproduces that
/// contract so pipelines can be tested under failure. A spec `(phase, task,
/// attempt)` makes that attempt fail before doing any work.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    specs: HashSet<(Phase, usize, u32)>,
}

impl FailurePlan {
    /// No injected failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails the first attempt of the given task.
    pub fn fail_once(mut self, phase: Phase, task: usize) -> Self {
        self.specs.insert((phase, task, 0));
        self
    }

    /// Fails a specific attempt of the given task.
    pub fn fail_attempt(mut self, phase: Phase, task: usize, attempt: u32) -> Self {
        self.specs.insert((phase, task, attempt));
        self
    }

    /// Fails the first `n` attempts of the given task.
    pub fn fail_n_times(mut self, phase: Phase, task: usize, n: u32) -> Self {
        for attempt in 0..n {
            self.specs.insert((phase, task, attempt));
        }
        self
    }

    /// True if this attempt should fail.
    pub fn should_fail(&self, phase: Phase, task: usize, attempt: u32) -> bool {
        self.specs.contains(&(phase, task, attempt))
    }

    /// True if the plan contains no failures.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Engine configuration: the in-process stand-in for cluster topology.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Concurrent map tasks ("map slots"). The paper's cluster runs 10
    /// workers × 8 slots; here each slot is a thread.
    pub map_parallelism: usize,
    /// Concurrent reduce tasks.
    pub reduce_parallelism: usize,
    /// Number of reduce partitions (= reduce tasks).
    pub num_reduce_tasks: usize,
    /// Records per map task (input split size).
    pub split_size: usize,
    /// Whether to run the job's combiner on the map side.
    pub use_combiner: bool,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: u32,
    /// Injected failures.
    pub failure_plan: FailurePlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ClusterConfig {
            map_parallelism: threads,
            reduce_parallelism: threads,
            num_reduce_tasks: threads * 2,
            split_size: 16 * 1024,
            use_combiner: true,
            max_attempts: 4,
            failure_plan: FailurePlan::none(),
        }
    }
}

impl ClusterConfig {
    /// A single-threaded configuration (useful for determinism tests).
    pub fn sequential() -> Self {
        ClusterConfig {
            map_parallelism: 1,
            reduce_parallelism: 1,
            num_reduce_tasks: 1,
            ..Default::default()
        }
    }

    /// Sets both map and reduce parallelism — the "number of machines" knob
    /// used by the scalability experiments (Fig. 6).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.map_parallelism = n.max(1);
        self.reduce_parallelism = n.max(1);
        self.num_reduce_tasks = self.num_reduce_tasks.max(n);
        self
    }

    /// Sets the number of reduce partitions.
    pub fn with_reduce_tasks(mut self, n: usize) -> Self {
        self.num_reduce_tasks = n.max(1);
        self
    }

    /// Sets the input split size.
    pub fn with_split_size(mut self, n: usize) -> Self {
        self.split_size = n.max(1);
        self
    }

    /// Enables or disables the combiner.
    pub fn with_combiner(mut self, on: bool) -> Self {
        self.use_combiner = on;
        self
    }

    /// Installs a failure plan.
    pub fn with_failures(mut self, plan: FailurePlan) -> Self {
        self.failure_plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_plan_matches_specs() {
        let plan = FailurePlan::none()
            .fail_once(Phase::Map, 3)
            .fail_n_times(Phase::Reduce, 1, 2);
        assert!(plan.should_fail(Phase::Map, 3, 0));
        assert!(!plan.should_fail(Phase::Map, 3, 1));
        assert!(plan.should_fail(Phase::Reduce, 1, 0));
        assert!(plan.should_fail(Phase::Reduce, 1, 1));
        assert!(!plan.should_fail(Phase::Reduce, 1, 2));
        assert!(!plan.should_fail(Phase::Map, 0, 0));
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn config_builders() {
        let cfg = ClusterConfig::sequential()
            .with_parallelism(4)
            .with_reduce_tasks(7)
            .with_split_size(100)
            .with_combiner(false);
        assert_eq!(cfg.map_parallelism, 4);
        assert_eq!(cfg.reduce_parallelism, 4);
        assert_eq!(cfg.num_reduce_tasks, 7);
        assert_eq!(cfg.split_size, 100);
        assert!(!cfg.use_combiner);
        // Parallelism is clamped to at least 1.
        assert_eq!(
            ClusterConfig::default().with_parallelism(0).map_parallelism,
            1
        );
    }
}
