//! Integration tests: the index against brute force over the mined
//! pattern set, hierarchy-aware query edge cases, writer input
//! validation, corruption handling, and the concurrent query service.

use std::sync::Arc;

use lash_core::pattern::Pattern;
use lash_core::prelude::*;
use lash_datagen::paper_example;
use lash_index::{
    write_patterns, IndexError, PatternIndexReader, PatternIndexWriter, Query, QueryReply,
    QueryService,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lash-index-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Mines the paper's Fig. 1 example and returns everything the tests
/// compare against.
fn mined() -> (Vocabulary, Vec<Pattern>) {
    let (vocab, db) = paper_example();
    let params = GsmParams::new(2, 1, 3).unwrap();
    let result = Lash::default().mine(&db, &vocab, &params).unwrap();
    (vocab, result.patterns().to_vec())
}

fn id(vocab: &Vocabulary, name: &str) -> ItemId {
    vocab.lookup(name).unwrap_or_else(|| panic!("item {name}"))
}

/// Brute-force prefix enumeration over the pattern list.
fn brute_enumerate(patterns: &[Pattern], prefix: &[ItemId]) -> Vec<(Vec<ItemId>, u64)> {
    let mut hits: Vec<(Vec<ItemId>, u64)> = patterns
        .iter()
        .filter(|p| p.items.starts_with(prefix))
        .map(|p| (p.items.clone(), p.frequency))
        .collect();
    hits.sort();
    hits
}

/// Brute-force top-k (frequency descending, ties lexicographic).
fn brute_top_k(patterns: &[Pattern], prefix: &[ItemId], k: usize) -> Vec<(Vec<ItemId>, u64)> {
    let mut hits = brute_enumerate(patterns, prefix);
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits.truncate(k);
    hits
}

/// Brute-force hierarchy-aware lookup: same length, each query item
/// generalizes to the pattern item at its position.
fn brute_generalized(
    vocab: &Vocabulary,
    patterns: &[Pattern],
    query: &[ItemId],
) -> Vec<(Vec<ItemId>, u64)> {
    let mut hits: Vec<(Vec<ItemId>, u64)> = patterns
        .iter()
        .filter(|p| {
            p.items.len() == query.len()
                && p.items
                    .iter()
                    .zip(query.iter())
                    .all(|(&pi, &qi)| vocab.generalizes_to(qi, pi))
        })
        .map(|p| (p.items.clone(), p.frequency))
        .collect();
    hits.sort();
    hits
}

#[test]
fn every_mined_pattern_is_found_with_exact_support() {
    let (vocab, patterns) = mined();
    let dir = temp_dir("exact");
    let summary = write_patterns(&dir, &vocab, &patterns).unwrap();
    assert_eq!(summary.num_patterns, patterns.len() as u64);
    let reader = PatternIndexReader::open(&dir).unwrap();
    assert_eq!(reader.num_patterns(), patterns.len() as u64);
    for p in &patterns {
        assert_eq!(
            reader.support(&p.items).unwrap(),
            Some(p.frequency),
            "pattern {:?}",
            p.to_names(&vocab)
        );
    }
    // Sequences that were not mined: absent prefix of a real pattern,
    // over-long extension, and a frequent-looking but unmined pair.
    let a = id(&vocab, "a");
    let e = id(&vocab, "e");
    assert_eq!(reader.support(&[e]).unwrap(), None);
    assert_eq!(reader.support(&[a, a, a, a]).unwrap(), None);
    assert_eq!(reader.support(&[a]).unwrap(), None); // length-1 never mined (λ ≥ 2)
    assert_eq!(reader.max_frequency(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prefix_enumeration_matches_brute_force() {
    let (vocab, patterns) = mined();
    let dir = temp_dir("enum");
    write_patterns(&dir, &vocab, &patterns).unwrap();
    let reader = PatternIndexReader::open(&dir).unwrap();
    let a = id(&vocab, "a");
    let b_cap = id(&vocab, "B");
    let b1 = id(&vocab, "b1");
    let e = id(&vocab, "e");
    for prefix in [
        vec![],
        vec![a],
        vec![b_cap],
        vec![b1],
        vec![a, b_cap],
        vec![e],
        vec![a, b_cap, id(&vocab, "c")],
    ] {
        assert_eq!(
            reader.enumerate(&prefix, None).unwrap(),
            brute_enumerate(&patterns, &prefix),
            "prefix {prefix:?}"
        );
    }
    // The limit caps results but keeps the lexicographic order.
    let all = reader.enumerate(&[], None).unwrap();
    assert_eq!(all.len(), patterns.len());
    let capped = reader.enumerate(&[], Some(3)).unwrap();
    assert_eq!(capped[..], all[..3]);
    assert!(reader.enumerate(&[], Some(0)).unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn top_k_matches_brute_force_for_all_k() {
    let (vocab, patterns) = mined();
    let dir = temp_dir("topk");
    write_patterns(&dir, &vocab, &patterns).unwrap();
    let reader = PatternIndexReader::open(&dir).unwrap();
    let a = id(&vocab, "a");
    let b_cap = id(&vocab, "B");
    for prefix in [vec![], vec![a], vec![b_cap], vec![id(&vocab, "e")]] {
        for k in 0..=patterns.len() + 2 {
            assert_eq!(
                reader.top_k(&prefix, k).unwrap(),
                brute_top_k(&patterns, &prefix, k),
                "prefix {prefix:?} k {k}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hierarchy_queries_expand_to_ancestors() {
    let (vocab, patterns) = mined();
    let dir = temp_dir("hier");
    write_patterns(&dir, &vocab, &patterns).unwrap();
    let reader = PatternIndexReader::open(&dir).unwrap();
    let a = id(&vocab, "a");
    let b_cap = id(&vocab, "B");
    let b1 = id(&vocab, "b1");
    let b11 = id(&vocab, "b11");
    let d1 = id(&vocab, "d1");

    // Multi-level chain: b11 expands through b1 up to B, so a leaf-phrased
    // query finds the generalized patterns ("a b1" and "a B") that never
    // mention b11.
    let hits = reader.lookup_generalized(&[a, b11]).unwrap();
    assert_eq!(hits, brute_generalized(&vocab, &patterns, &[a, b11]));
    let hit_items: Vec<&[ItemId]> = hits.iter().map(|(i, _)| i.as_slice()).collect();
    assert!(hit_items.contains(&&[a, b1][..]));
    assert!(hit_items.contains(&&[a, b_cap][..]));

    // Intermediate item: b1 expands to {b1, B} but not down to b11.
    assert_eq!(
        reader.lookup_generalized(&[a, b1]).unwrap(),
        brute_generalized(&vocab, &patterns, &[a, b1])
    );

    // Root item with children: B expands to itself only — no descent.
    assert_eq!(
        reader.lookup_generalized(&[a, b_cap]).unwrap(),
        brute_generalized(&vocab, &patterns, &[a, b_cap])
    );

    // Item with no parents and no children: the expansion is the item
    // itself.
    assert_eq!(
        reader.lookup_generalized(&[a, a]).unwrap(),
        brute_generalized(&vocab, &patterns, &[a, a])
    );

    // Multi-position expansion: both positions expand independently
    // (b11 → {b11, b1, B}, d1 → {d1, D}).
    let hits = reader.lookup_generalized(&[b11, d1]).unwrap();
    assert_eq!(hits, brute_generalized(&vocab, &patterns, &[b11, d1]));
    assert!(!hits.is_empty(), "b1 D and B D are mined");

    // An empty query matches nothing (patterns have length ≥ 2).
    assert!(reader.lookup_generalized(&[]).unwrap().is_empty());

    // An item id absent from the vocabulary is a typed error, not a panic
    // — on every query kind.
    let bogus = ItemId::from_u32(vocab.len() as u32 + 7);
    assert!(matches!(
        reader.lookup_generalized(&[a, bogus]),
        Err(IndexError::UnknownItem(v)) if v == bogus.as_u32()
    ));
    assert!(matches!(
        reader.support(&[bogus]),
        Err(IndexError::UnknownItem(_))
    ));
    assert!(matches!(
        reader.enumerate(&[bogus], None),
        Err(IndexError::UnknownItem(_))
    ));
    assert!(matches!(
        reader.top_k(&[bogus], 3),
        Err(IndexError::UnknownItem(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writer_rejects_bad_input_with_typed_errors() {
    let (vocab, _) = mined();
    let a = id(&vocab, "a");
    let b_cap = id(&vocab, "B");
    let c = id(&vocab, "c");

    let dir = temp_dir("badinput");
    let mut w = PatternIndexWriter::create(&dir, &vocab).unwrap();
    assert!(matches!(w.add(&[], 1), Err(IndexError::EmptyPattern)));
    let bogus = ItemId::from_u32(999);
    assert!(matches!(
        w.add(&[bogus], 1),
        Err(IndexError::UnknownItem(999))
    ));
    w.add(&[a, b_cap], 3).unwrap();
    // A duplicate and a lexicographic regression are both unsorted input.
    assert!(matches!(
        w.add(&[a, b_cap], 3),
        Err(IndexError::UnsortedInput { position: 1 })
    ));
    assert!(matches!(
        w.add(&[a, a], 2),
        Err(IndexError::UnsortedInput { .. })
    ));
    // A prefix arriving after its extension is also out of order…
    w.add(&[a, b_cap, c], 2).unwrap();
    assert!(matches!(
        w.add(&[a, b_cap], 3),
        Err(IndexError::UnsortedInput { .. })
    ));
    drop(w);
    let _ = std::fs::remove_dir_all(&dir);

    // …but a prefix arriving *before* its extension is fine, and both are
    // served.
    let dir = temp_dir("prefix-order");
    let mut w = PatternIndexWriter::create(&dir, &vocab).unwrap();
    w.add(&[a, b_cap], 3).unwrap();
    w.add(&[a, b_cap, c], 2).unwrap();
    w.finish().unwrap();
    let reader = PatternIndexReader::open(&dir).unwrap();
    assert_eq!(reader.support(&[a, b_cap]).unwrap(), Some(3));
    assert_eq!(reader.support(&[a, b_cap, c]).unwrap(), Some(2));

    // Indexes are immutable: a second create at the same path refuses.
    assert!(matches!(
        PatternIndexWriter::create(&dir, &vocab),
        Err(IndexError::AlreadyExists(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_index_serves_empty_answers() {
    let (vocab, _) = mined();
    let dir = temp_dir("empty");
    let summary = write_patterns(&dir, &vocab, &[]).unwrap();
    assert_eq!(summary.num_patterns, 0);
    let reader = PatternIndexReader::open(&dir).unwrap();
    assert!(reader.is_empty());
    let a = id(&vocab, "a");
    assert_eq!(reader.support(&[a]).unwrap(), None);
    assert!(reader.enumerate(&[], None).unwrap().is_empty());
    assert!(reader.top_k(&[], 5).unwrap().is_empty());
    assert!(reader.lookup_generalized(&[a]).unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tiny_blocks_split_the_trie_without_changing_answers() {
    let (vocab, patterns) = mined();
    let dir = temp_dir("tinyblocks");
    // A 1-byte budget seals a frame per node — the multi-block read path.
    let mut sorted = patterns.clone();
    lash_core::pattern::sort_patterns_lexicographic(&mut sorted);
    let mut w = PatternIndexWriter::create_with_budget(&dir, &vocab, 1).unwrap();
    for p in &sorted {
        w.add(&p.items, p.frequency).unwrap();
    }
    let summary = w.finish().unwrap();
    assert!(summary.num_nodes > 1);
    let reader = PatternIndexReader::open(&dir).unwrap();
    for p in &patterns {
        assert_eq!(reader.support(&p.items).unwrap(), Some(p.frequency));
    }
    assert_eq!(
        reader.enumerate(&[], None).unwrap(),
        brute_enumerate(&patterns, &[])
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_surfaces_as_typed_errors_never_panics() {
    let (vocab, patterns) = mined();
    let dir = temp_dir("corrupt");
    write_patterns(&dir, &vocab, &patterns).unwrap();
    let trie = dir.join("trie.lash");
    let manifest = dir.join("INDEX.lash");
    let trie_bytes = std::fs::read(&trie).unwrap();
    let manifest_bytes = std::fs::read(&manifest).unwrap();

    // Truncations of both files at every length.
    for (path, bytes) in [(&trie, &trie_bytes), (&manifest, &manifest_bytes)] {
        for cut in 0..bytes.len() {
            std::fs::write(path, &bytes[..cut]).unwrap();
            let err = PatternIndexReader::open(&dir)
                .err()
                .unwrap_or_else(|| panic!("{path:?} cut at {cut} must not open"));
            assert!(
                matches!(
                    err,
                    IndexError::Corrupt(_) | IndexError::Decode(_) | IndexError::Io(_)
                ),
                "cut {cut}: unexpected error {err:?}"
            );
        }
        std::fs::write(path, bytes).unwrap();
    }

    // Single-bit flips anywhere in either file.
    for (path, bytes) in [(&trie, &trie_bytes), (&manifest, &manifest_bytes)] {
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x20;
            std::fs::write(path, &flipped).unwrap();
            match PatternIndexReader::open(&dir) {
                // A flip in a frame length prefix may still parse; the
                // checksum or a structural check must catch everything
                // that opens.
                Err(
                    IndexError::Corrupt(_)
                    | IndexError::Decode(_)
                    | IndexError::Io(_)
                    | IndexError::UnsupportedVersion { .. },
                ) => {}
                Err(other) => panic!("flip at {i}: unexpected error {other:?}"),
                Ok(_) => panic!("flip at byte {i} of {path:?} went undetected"),
            }
        }
        std::fs::write(path, bytes).unwrap();
    }

    // Intact again: opens fine.
    PatternIndexReader::open(&dir).unwrap();

    // A manifest claiming a future format version is UnsupportedVersion:
    // forge one (magic + varint version) wrapped in a valid frame.
    let mut payload = b"LASHPIDX".to_vec();
    lash_encoding::encode_u32(99, &mut payload);
    let mut framed = Vec::new();
    lash_encoding::encode_frame(&payload, &mut framed);
    std::fs::write(&manifest, &framed).unwrap();
    assert!(matches!(
        PatternIndexReader::open(&dir),
        Err(IndexError::UnsupportedVersion { found: 99 })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Hand-builds a two-node index (root → one terminal leaf) with an
/// arbitrary root subtree bound, valid frames and manifest throughout.
fn forge_index(dir: &std::path::Path, root_bound: u64) {
    use lash_encoding::{encode_u32, encode_u64, write_frame, write_frame_with, FrameChecksum};
    std::fs::create_dir_all(dir).unwrap();
    // Arena: leaf node (freq 5, bound 5, no children) at offset 0, root
    // (no freq, bound `root_bound`, one child: item 0 at offset 0) at 3.
    let mut arena = vec![6u8, 5, 0];
    let root_offset = arena.len() as u64;
    encode_u64(0, &mut arena); // no frequency
    encode_u64(root_bound, &mut arena);
    encode_u32(1, &mut arena); // one child
    lash_encoding::group_varint::encode(&[0], &mut arena); // child id 0
    encode_u64(0, &mut arena); // offset delta 0
    let mut trie = Vec::new();
    let mut header = b"LASHTRIE".to_vec();
    encode_u32(1, &mut header);
    write_frame(&header, &mut trie).unwrap();
    write_frame_with(&arena, &mut trie, FrameChecksum::Fnv1aWide).unwrap();
    std::fs::write(dir.join("trie.lash"), &trie).unwrap();

    let mut manifest = Vec::new();
    let mut head = b"LASHPIDX".to_vec();
    encode_u32(1, &mut head); // version
    encode_u64(1, &mut head); // patterns
    encode_u64(2, &mut head); // nodes
    encode_u64(arena.len() as u64, &mut head);
    encode_u64(root_offset, &mut head);
    encode_u64(5, &mut head); // max frequency
    write_frame(&head, &mut manifest).unwrap();
    let mut vocab_payload = Vec::new();
    let mut vb = VocabularyBuilder::new();
    vb.intern("only-item");
    vb.finish().unwrap().encode_bytes(&mut vocab_payload);
    write_frame(&vocab_payload, &mut manifest).unwrap();
    std::fs::write(dir.join("INDEX.lash"), &manifest).unwrap();
}

#[test]
fn inconsistent_subtree_bounds_are_rejected_at_open() {
    // Positive control: with the correct bound the forged index opens and
    // answers.
    let dir = temp_dir("forged-good");
    forge_index(&dir, 5);
    let reader = PatternIndexReader::open(&dir).unwrap();
    assert_eq!(reader.support(&[ItemId::from_u32(0)]).unwrap(), Some(5));
    assert_eq!(
        reader.top_k(&[], 1).unwrap(),
        vec![(vec![ItemId::from_u32(0)], 5)]
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // A checksum-valid file whose root claims a subtree bound its subtree
    // does not hold would silently corrupt top-k pruning — the open-time
    // validation pass must reject it as corruption.
    for bad_bound in [99, 4] {
        let dir = temp_dir(&format!("forged-bad-{bad_bound}"));
        forge_index(&dir, bad_bound);
        assert!(
            matches!(PatternIndexReader::open(&dir), Err(IndexError::Corrupt(_))),
            "bound {bad_bound} must not open"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn query_service_serves_concurrently_and_swaps_atomically() {
    let (vocab, db) = paper_example();
    let params = GsmParams::new(2, 1, 3).unwrap();
    let result = Lash::default().mine(&db, &vocab, &params).unwrap();
    let patterns = result.patterns().to_vec();
    let dir = temp_dir("service");
    write_patterns(&dir, &vocab, &patterns).unwrap();
    let service = Arc::new(QueryService::new(PatternIndexReader::open(&dir).unwrap()));

    // Four threads hammer one service; every answer must equal brute
    // force over the pattern list.
    let mut handles = Vec::new();
    for t in 0..4 {
        let service = Arc::clone(&service);
        let vocab = vocab.clone();
        let patterns = patterns.clone();
        handles.push(std::thread::spawn(move || {
            let snapshot = service.snapshot();
            for round in 0..50 {
                for p in &patterns {
                    assert_eq!(snapshot.support(&p.items).unwrap(), Some(p.frequency));
                }
                let prefix = &patterns[(t + round) % patterns.len()].items[..1];
                assert_eq!(
                    snapshot.enumerate(prefix, None).unwrap(),
                    brute_enumerate(&patterns, prefix)
                );
                assert_eq!(
                    snapshot.top_k(&[], 4).unwrap(),
                    brute_top_k(&patterns, &[], 4)
                );
                let leaf = vocab.lookup("b11").unwrap();
                let a = vocab.lookup("a").unwrap();
                assert_eq!(
                    snapshot.lookup_generalized(&[a, leaf]).unwrap(),
                    brute_generalized(&vocab, &patterns, &[a, leaf])
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Re-mine with a stricter σ and swap; old snapshots keep answering,
    // new snapshots see the new index.
    let old_snapshot = service.snapshot();
    let strict = GsmParams::new(3, 1, 3).unwrap();
    let restricted = Lash::default().mine(&db, &vocab, &strict).unwrap();
    let dir2 = temp_dir("service-v2");
    write_patterns(&dir2, &vocab, restricted.patterns()).unwrap();
    service.swap(PatternIndexReader::open(&dir2).unwrap());

    let a = vocab.lookup("a").unwrap();
    let b_cap = vocab.lookup("B").unwrap();
    // "a B" (frequency 3) survives σ=3; "a a" (frequency 2) does not.
    let a_a = vocab.lookup("a").map(|x| [x, x]).unwrap();
    assert_eq!(old_snapshot.support(&a_a).unwrap(), Some(2));
    let reply = service
        .execute(&Query::Support {
            items: vec![a, b_cap],
        })
        .unwrap();
    assert_eq!(reply, QueryReply::Support(Some(3)));
    let reply = service
        .execute(&Query::Support {
            items: a_a.to_vec(),
        })
        .unwrap();
    assert_eq!(reply, QueryReply::Support(None));

    // The request/response surface mirrors the direct calls.
    let QueryReply::Patterns(top) = service
        .execute(&Query::TopK {
            prefix: vec![],
            k: 2,
        })
        .unwrap()
    else {
        panic!("TopK replies with patterns");
    };
    let brute = brute_top_k(restricted.patterns(), &[], 2);
    assert_eq!(top.len(), brute.len());
    for (hit, (items, freq)) in top.iter().zip(brute.iter()) {
        assert_eq!(&hit.items, items);
        assert_eq!(hit.frequency, *freq);
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
}
