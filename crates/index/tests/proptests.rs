//! Property tests for the pattern index: for random mined corpora, every
//! pattern in the mined `PatternSet` is findable with its exact frequency,
//! every prefix enumeration (and top-k, and hierarchy-aware lookup)
//! equals the brute-force filter over the pattern list, builds are
//! deterministic, and truncated or bit-flipped index files surface typed
//! corruption errors — never panics.

use std::sync::atomic::{AtomicU64, Ordering};

use lash_core::pattern::Pattern;
use lash_core::prelude::*;
use lash_index::{write_patterns, IndexError, PatternIndexReader};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("lash-index-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A random forest vocabulary over up to `max_items` items.
fn arb_vocabulary(max_items: usize) -> impl Strategy<Value = Vocabulary> {
    prop::collection::vec(prop::option::weighted(0.5, 0..100usize), 2..max_items).prop_map(
        |parents| {
            let mut vb = VocabularyBuilder::new();
            let items: Vec<_> = (0..parents.len())
                .map(|i| vb.intern(&format!("item-{i}")))
                .collect();
            for (i, parent) in parents.iter().enumerate() {
                if i > 0 {
                    if let Some(p) = parent {
                        vb.set_parent(items[i], items[p % i])
                            .expect("parent precedes child");
                    }
                }
            }
            vb.finish().expect("forest by construction")
        },
    )
}

/// Raw sequences as item indices (wrapped into the vocabulary at use
/// site). Skewed toward small ids so patterns actually become frequent.
fn arb_raw_db() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..10, 1..7), 4..32)
}

/// Mines a random corpus and returns the vocabulary-space pattern list.
fn mine(vocab: &Vocabulary, raw: &[Vec<u32>], sigma: u64) -> Vec<Pattern> {
    let n = vocab.len() as u32;
    let mut db = SequenceDatabase::new();
    for seq in raw {
        let items: Vec<ItemId> = seq.iter().map(|&i| ItemId::from_u32(i % n)).collect();
        db.push(&items);
    }
    let params = GsmParams::new(sigma, 1, 3).unwrap();
    Lash::default()
        .mine(&db, vocab, &params)
        .unwrap()
        .patterns()
        .to_vec()
}

fn brute_enumerate(patterns: &[Pattern], prefix: &[ItemId]) -> Vec<(Vec<ItemId>, u64)> {
    let mut hits: Vec<(Vec<ItemId>, u64)> = patterns
        .iter()
        .filter(|p| p.items.starts_with(prefix))
        .map(|p| (p.items.clone(), p.frequency))
        .collect();
    hits.sort();
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: every mined pattern is findable with its
    /// exact frequency; sequences outside the set answer `None`; every
    /// prefix enumeration, top-k, and hierarchy-aware lookup equals the
    /// brute-force filter over the pattern list.
    #[test]
    fn index_answers_equal_brute_force(
        vocab in arb_vocabulary(16),
        raw in arb_raw_db(),
        sigma in 1u64..4,
    ) {
        let patterns = mine(&vocab, &raw, sigma);
        let dir = temp_dir("brute");
        let summary = write_patterns(&dir, &vocab, &patterns).unwrap();
        prop_assert_eq!(summary.num_patterns, patterns.len() as u64);
        let reader = PatternIndexReader::open(&dir).unwrap();

        for p in &patterns {
            prop_assert_eq!(reader.support(&p.items).unwrap(), Some(p.frequency));
        }
        // Probes derived from mined patterns but outside the set: one item
        // appended, one chopped to the (never-mined) length 1.
        for p in patterns.iter().take(8) {
            let mut longer = p.items.clone();
            longer.extend_from_slice(&p.items);
            if !patterns.iter().any(|q| q.items == longer) {
                prop_assert_eq!(reader.support(&longer).unwrap(), None);
            }
            let shorter = &p.items[..1];
            let expect = patterns.iter().find(|q| q.items == shorter).map(|q| q.frequency);
            prop_assert_eq!(reader.support(shorter).unwrap(), expect);
        }

        // Prefix enumeration over every distinct first item plus the
        // empty and a two-item prefix.
        let mut prefixes: Vec<Vec<ItemId>> = vec![Vec::new()];
        for p in &patterns {
            prefixes.push(p.items[..1].to_vec());
            prefixes.push(p.items[..p.items.len().min(2)].to_vec());
        }
        prefixes.dedup();
        for prefix in &prefixes {
            prop_assert_eq!(
                reader.enumerate(prefix, None).unwrap(),
                brute_enumerate(&patterns, prefix),
                "prefix {:?}", prefix
            );
        }

        // Top-k: brute force re-sorted by (frequency desc, items asc).
        for prefix in prefixes.iter().take(6) {
            for k in [1usize, 3, patterns.len() + 1] {
                let mut brute = brute_enumerate(&patterns, prefix);
                brute.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                brute.truncate(k);
                prop_assert_eq!(reader.top_k(prefix, k).unwrap(), brute, "k {}", k);
            }
        }

        // Hierarchy-aware lookup for probes built from mined patterns
        // (each query item must generalize to the pattern item at its
        // position).
        for p in patterns.iter().take(8) {
            let query: Vec<ItemId> = p.items.clone();
            let mut brute: Vec<(Vec<ItemId>, u64)> = patterns
                .iter()
                .filter(|q| {
                    q.items.len() == query.len()
                        && q.items
                            .iter()
                            .zip(query.iter())
                            .all(|(&qi, &pi)| vocab.generalizes_to(pi, qi))
                })
                .map(|q| (q.items.clone(), q.frequency))
                .collect();
            brute.sort();
            prop_assert_eq!(reader.lookup_generalized(&query).unwrap(), brute);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Building the same pattern set twice produces byte-identical files —
    /// the index inherits the mining pipeline's end-to-end determinism.
    #[test]
    fn builds_are_deterministic(
        vocab in arb_vocabulary(12),
        raw in arb_raw_db(),
    ) {
        let patterns = mine(&vocab, &raw, 2);
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        write_patterns(&dir_a, &vocab, &patterns).unwrap();
        write_patterns(&dir_b, &vocab, &patterns).unwrap();
        for file in ["INDEX.lash", "trie.lash"] {
            let a = std::fs::read(dir_a.join(file)).unwrap();
            let b = std::fs::read(dir_b.join(file)).unwrap();
            prop_assert_eq!(a, b, "file {} differs", file);
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    /// Truncations and random bit flips of either index file surface as
    /// typed errors — open (or the query, for flips the checksums cannot
    /// see, which do not exist: everything is framed) never panics.
    #[test]
    fn corrupt_files_yield_typed_errors(
        vocab in arb_vocabulary(10),
        raw in arb_raw_db(),
        cut_permille in 0u64..1000,
        flip_permille in 0u64..1000,
        flip_bit in 0u8..8,
        which in prop_oneof![Just("INDEX.lash"), Just("trie.lash")],
    ) {
        let patterns = mine(&vocab, &raw, 2);
        let dir = temp_dir("corrupt");
        write_patterns(&dir, &vocab, &patterns).unwrap();
        let path = dir.join(which);
        let bytes = std::fs::read(&path).unwrap();

        // Truncation at a random cut.
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).unwrap();
        match PatternIndexReader::open(&dir) {
            Err(IndexError::Corrupt(_) | IndexError::Decode(_) | IndexError::Io(_)) => {}
            Err(other) => prop_assert!(false, "truncation: unexpected error {:?}", other),
            Ok(_) => prop_assert!(
                cut == bytes.len(),
                "truncated {} at {} still opened", which, cut
            ),
        }

        // A single bit flip at a random position.
        let mut flipped = bytes.clone();
        let at = ((bytes.len() as u64 * flip_permille / 1000) as usize).min(bytes.len() - 1);
        flipped[at] ^= 1 << flip_bit;
        std::fs::write(&path, &flipped).unwrap();
        match PatternIndexReader::open(&dir) {
            Err(
                IndexError::Corrupt(_)
                | IndexError::Decode(_)
                | IndexError::Io(_)
                | IndexError::UnsupportedVersion { .. },
            ) => {}
            Err(other) => prop_assert!(false, "flip: unexpected error {:?}", other),
            Ok(_) => prop_assert!(false, "flip at byte {} of {} went undetected", at, which),
        }

        // Restored, the index opens and serves again.
        std::fs::write(&path, &bytes).unwrap();
        let reader = PatternIndexReader::open(&dir).unwrap();
        for p in patterns.iter().take(4) {
            prop_assert_eq!(reader.support(&p.items).unwrap(), Some(p.frequency));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
