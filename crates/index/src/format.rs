//! The on-disk format of the pattern index.
//!
//! Everything on disk is wrapped in `lash-encoding` frames (varint length
//! prefix + payload + checksum), mirroring `lash-store`: the manifest file
//! `INDEX.lash` holds a header frame and a vocabulary frame (classic
//! FNV-1a-32 checksums, readable before any version dispatch), the trie
//! file `trie.lash` holds a header frame (classic) followed by node-block
//! frames verified with the word-wise wide checksum
//! ([`lash_encoding::frame::checksum_wide`]), the flavor `lash-store`
//! format-v3 block frames use.
//!
//! ## Node layout
//!
//! The concatenated payloads of the trie's block frames form the node
//! *arena*; a node is addressed by its byte offset in the arena. Nodes are
//! written bottom-up, so every child offset is strictly smaller than its
//! parent's offset — which both guarantees termination of any walk over a
//! (checksum-passing but logically) corrupt arena and lets the decoder
//! reject offset cycles outright. One node is:
//!
//! ```text
//! varint u64   freq + 1          (0 ⇒ the path to this node is no pattern)
//! varint u64   max subtree freq  (top-k pruning bound, includes self)
//! varint u32   child count n
//! n > 0:
//!   group-varint u32 × n         child item-id deltas (first absolute,
//!                                 then gaps; ids strictly ascend)
//!   varint u64 × n               child offset deltas (first absolute,
//!                                 then gaps; offsets strictly ascend)
//! ```
//!
//! The root node is written last and its offset recorded in the manifest.

use lash_core::vocabulary::Vocabulary;
use lash_encoding::varint::VarintReader;
use lash_encoding::{group_varint, varint};

use crate::{IndexError, Result};

/// Name of the manifest file inside an index directory.
pub const MANIFEST_FILE: &str = "INDEX.lash";

/// Name of the trie file inside an index directory.
pub const TRIE_FILE: &str = "trie.lash";

/// Magic bytes opening the manifest header frame.
pub(crate) const MANIFEST_MAGIC: &[u8; 8] = b"LASHPIDX";

/// Magic bytes opening the trie file's header frame.
pub(crate) const TRIE_MAGIC: &[u8; 8] = b"LASHTRIE";

/// The index format version this build writes.
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// The oldest index format version this build still reads.
pub const MIN_INDEX_FORMAT_VERSION: u32 = 1;

/// The checksum flavor of trie node-block frames (header frames stay
/// classic so they are readable before any version dispatch).
pub(crate) const BLOCK_CHECKSUM: lash_encoding::FrameChecksum =
    lash_encoding::FrameChecksum::Fnv1aWide;

/// Everything the manifest records about an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexManifest {
    /// Format version the index was written with.
    pub version: u32,
    /// Number of indexed patterns (trie terminals).
    pub num_patterns: u64,
    /// Number of trie nodes, including the root.
    pub num_nodes: u64,
    /// Total bytes of the node arena (concatenated block payloads).
    pub arena_len: u64,
    /// Arena offset of the root node.
    pub root_offset: u64,
    /// Maximum pattern frequency in the index (0 when empty).
    pub max_frequency: u64,
}

/// Encodes the manifest header frame payload.
pub(crate) fn encode_manifest_header(m: &IndexManifest, buf: &mut Vec<u8>) {
    buf.extend_from_slice(MANIFEST_MAGIC);
    varint::encode_u32(m.version, buf);
    varint::encode_u64(m.num_patterns, buf);
    varint::encode_u64(m.num_nodes, buf);
    varint::encode_u64(m.arena_len, buf);
    varint::encode_u64(m.root_offset, buf);
    varint::encode_u64(m.max_frequency, buf);
}

/// Decodes and validates the manifest header frame payload.
pub(crate) fn decode_manifest_header(bytes: &[u8]) -> Result<IndexManifest> {
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(IndexError::Corrupt("index manifest magic mismatch".into()));
    }
    let mut r = VarintReader::new(&bytes[MANIFEST_MAGIC.len()..]);
    let version = r.read_u32()?;
    // Versions are rejected before any version-dependent field is read: a
    // manifest written by a future build must surface as
    // UnsupportedVersion, never be misparsed into a plausible manifest.
    if !(MIN_INDEX_FORMAT_VERSION..=INDEX_FORMAT_VERSION).contains(&version) {
        return Err(IndexError::UnsupportedVersion { found: version });
    }
    let manifest = IndexManifest {
        version,
        num_patterns: r.read_u64()?,
        num_nodes: r.read_u64()?,
        arena_len: r.read_u64()?,
        root_offset: r.read_u64()?,
        max_frequency: r.read_u64()?,
    };
    if !r.is_empty() {
        return Err(IndexError::Corrupt("trailing manifest header bytes".into()));
    }
    if manifest.root_offset >= manifest.arena_len {
        return Err(IndexError::Corrupt(format!(
            "root offset {} not inside the {}-byte arena",
            manifest.root_offset, manifest.arena_len
        )));
    }
    Ok(manifest)
}

/// Encodes the trie file's header frame payload.
pub(crate) fn encode_trie_header(version: u32, buf: &mut Vec<u8>) {
    buf.extend_from_slice(TRIE_MAGIC);
    varint::encode_u32(version, buf);
}

/// Decodes and validates the trie file's header frame payload.
pub(crate) fn decode_trie_header(bytes: &[u8]) -> Result<u32> {
    if bytes.len() < TRIE_MAGIC.len() || &bytes[..TRIE_MAGIC.len()] != TRIE_MAGIC {
        return Err(IndexError::Corrupt("trie file magic mismatch".into()));
    }
    let mut r = VarintReader::new(&bytes[TRIE_MAGIC.len()..]);
    let version = r.read_u32()?;
    if !(MIN_INDEX_FORMAT_VERSION..=INDEX_FORMAT_VERSION).contains(&version) {
        return Err(IndexError::UnsupportedVersion { found: version });
    }
    if !r.is_empty() {
        return Err(IndexError::Corrupt("trailing trie header bytes".into()));
    }
    Ok(version)
}

/// Encodes the interned vocabulary + hierarchy frame payload — the shared
/// [`Vocabulary::encode_bytes`] layout `lash-store` manifests embed too,
/// so the wire contract lives in one place (`lash-core`).
pub(crate) fn encode_vocabulary(vocab: &Vocabulary, buf: &mut Vec<u8>) {
    vocab.encode_bytes(buf);
}

/// Decodes a vocabulary frame payload, preserving item ids (intern order).
pub(crate) fn decode_vocabulary(bytes: &[u8]) -> Result<Vocabulary> {
    Vocabulary::decode_bytes(bytes)
        .map_err(|e| IndexError::Corrupt(format!("invalid vocabulary: {e}")))
}

/// Serializes one trie node into `buf` (see the module docs for the
/// layout). `children` are `(item id, arena offset)` pairs, already sorted
/// by ascending item id; offsets ascend with them because children are
/// emitted in id order.
pub(crate) fn encode_node(
    freq: Option<u64>,
    max_desc: u64,
    children: &[(u32, u64)],
    id_deltas: &mut Vec<u32>,
    buf: &mut Vec<u8>,
) {
    varint::encode_u64(freq.map_or(0, |f| f + 1), buf);
    varint::encode_u64(max_desc, buf);
    varint::encode_u32(children.len() as u32, buf);
    if children.is_empty() {
        return;
    }
    id_deltas.clear();
    let mut prev_id = 0u32;
    for (i, &(id, _)) in children.iter().enumerate() {
        id_deltas.push(if i == 0 { id } else { id - prev_id });
        prev_id = id;
    }
    group_varint::encode(id_deltas, buf);
    let mut prev_off = 0u64;
    for (i, &(_, off)) in children.iter().enumerate() {
        varint::encode_u64(if i == 0 { off } else { off - prev_off }, buf);
        prev_off = off;
    }
}

/// A decoded trie node: header plus children, materialized into
/// caller-owned buffers so query walks reuse allocations.
#[derive(Debug, Default)]
pub(crate) struct NodeBuf {
    /// Frequency of the pattern ending at this node, if it is one.
    pub freq: Option<u64>,
    /// Maximum pattern frequency in this node's subtree (including self).
    pub max_desc: u64,
    /// Child item ids, strictly ascending.
    pub ids: Vec<u32>,
    /// Child arena offsets, strictly ascending, all below this node's own
    /// offset.
    pub offsets: Vec<u64>,
}

/// Decodes the node header at `arena[offset..]`: `(freq, max_desc, child
/// count, bytes consumed)` — the first half of [`decode_node`], split out
/// so the header invariants (frequency within the subtree bound) are
/// checked in one place.
pub(crate) fn decode_node_header(
    arena: &[u8],
    offset: u64,
) -> Result<(Option<u64>, u64, u32, usize)> {
    let at = offset as usize;
    if at >= arena.len() {
        return Err(IndexError::Corrupt(format!(
            "node offset {offset} outside the {}-byte arena",
            arena.len()
        )));
    }
    let bytes = &arena[at..];
    let (freq_plus_one, a) = varint::decode_u64(bytes)?;
    let (max_desc, b) = varint::decode_u64(&bytes[a..])?;
    let (children, c) = varint::decode_u32(&bytes[a + b..])?;
    let freq = freq_plus_one.checked_sub(1);
    if let Some(f) = freq {
        if f > max_desc {
            return Err(IndexError::Corrupt(
                "node frequency exceeds its subtree bound".into(),
            ));
        }
    }
    Ok((freq, max_desc, children, a + b + c))
}

/// Decodes the whole node at `arena[offset..]` into `node`, returning the
/// number of arena bytes the node occupies (so a sequential decode can
/// walk node to node).
///
/// Every structural invariant is checked so a checksum-passing but
/// logically corrupt arena surfaces as [`IndexError::Corrupt`] instead of
/// a panic or a runaway walk: child counts are capped by the vocabulary
/// size (ids are distinct), ids must stay inside the vocabulary, and
/// offsets must strictly ascend yet stay below the node's own offset.
pub(crate) fn decode_node(
    arena: &[u8],
    offset: u64,
    vocab_len: u32,
    node: &mut NodeBuf,
) -> Result<usize> {
    let (freq, max_desc, children, header_len) = decode_node_header(arena, offset)?;
    node.freq = freq;
    node.max_desc = max_desc;
    node.ids.clear();
    node.offsets.clear();
    if children == 0 {
        return Ok(header_len);
    }
    if children > vocab_len {
        return Err(IndexError::Corrupt(format!(
            "node claims {children} children, vocabulary holds {vocab_len} items"
        )));
    }
    let mut pos = offset as usize + header_len;
    node.ids.resize(children as usize, 0);
    pos += group_varint::decode(&arena[pos.min(arena.len())..], &mut node.ids)?;
    // Deltas → absolute ids, validated against the vocabulary.
    let mut id = 0u32;
    for (i, delta) in node.ids.iter_mut().enumerate() {
        let gap = *delta;
        if i > 0 && gap == 0 {
            return Err(IndexError::Corrupt("child item ids not ascending".into()));
        }
        id = id
            .checked_add(gap)
            .ok_or_else(|| IndexError::Corrupt("child item id overflows".into()))?;
        if id >= vocab_len {
            return Err(IndexError::Corrupt(format!(
                "child item id {id} outside the {vocab_len}-item vocabulary"
            )));
        }
        *delta = id;
    }
    let mut off = 0u64;
    for i in 0..children as usize {
        if pos > arena.len() {
            return Err(IndexError::Decode(
                lash_encoding::DecodeError::UnexpectedEof,
            ));
        }
        let (delta, consumed) = varint::decode_u64(&arena[pos..])?;
        pos += consumed;
        if i > 0 && delta == 0 {
            return Err(IndexError::Corrupt("child offsets not ascending".into()));
        }
        off = off
            .checked_add(delta)
            .ok_or_else(|| IndexError::Corrupt("child offset overflows".into()))?;
        if off >= offset {
            return Err(IndexError::Corrupt(format!(
                "child offset {off} not below its parent's offset {offset}"
            )));
        }
        node.offsets.push(off);
    }
    Ok(pos - offset as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_header_round_trips() {
        let m = IndexManifest {
            version: INDEX_FORMAT_VERSION,
            num_patterns: 12,
            num_nodes: 20,
            arena_len: 4096,
            root_offset: 4090,
            max_frequency: 99,
        };
        let mut buf = Vec::new();
        encode_manifest_header(&m, &mut buf);
        assert_eq!(decode_manifest_header(&buf).unwrap(), m);
    }

    #[test]
    fn future_manifest_versions_are_rejected_as_unsupported() {
        let mut m = IndexManifest {
            version: INDEX_FORMAT_VERSION + 1,
            num_patterns: 0,
            num_nodes: 1,
            arena_len: 3,
            root_offset: 0,
            max_frequency: 0,
        };
        let mut buf = Vec::new();
        encode_manifest_header(&m, &mut buf);
        assert!(matches!(
            decode_manifest_header(&buf),
            Err(IndexError::UnsupportedVersion {
                found
            }) if found == INDEX_FORMAT_VERSION + 1
        ));
        m.version = 0;
        buf.clear();
        encode_manifest_header(&m, &mut buf);
        assert!(matches!(
            decode_manifest_header(&buf),
            Err(IndexError::UnsupportedVersion { found: 0 })
        ));
    }

    #[test]
    fn root_offset_outside_arena_is_corrupt() {
        let m = IndexManifest {
            version: INDEX_FORMAT_VERSION,
            num_patterns: 0,
            num_nodes: 1,
            arena_len: 10,
            root_offset: 10,
            max_frequency: 0,
        };
        let mut buf = Vec::new();
        encode_manifest_header(&m, &mut buf);
        assert!(matches!(
            decode_manifest_header(&buf),
            Err(IndexError::Corrupt(_))
        ));
    }

    #[test]
    fn node_round_trips_with_and_without_children() {
        let mut scratch = Vec::new();
        let mut arena = Vec::new();
        // A leaf at offset 0.
        encode_node(Some(7), 7, &[], &mut scratch, &mut arena);
        let leaf_len = arena.len() as u64;
        // A second leaf.
        encode_node(None, 42, &[], &mut scratch, &mut arena);
        // A parent referencing both.
        let parent_off = arena.len() as u64;
        encode_node(
            Some(3),
            42,
            &[(2, 0), (900, leaf_len)],
            &mut scratch,
            &mut arena,
        );
        let mut node = NodeBuf::default();
        decode_node(&arena, 0, 1000, &mut node).unwrap();
        assert_eq!(node.freq, Some(7));
        assert_eq!(node.max_desc, 7);
        assert!(node.ids.is_empty());
        decode_node(&arena, parent_off, 1000, &mut node).unwrap();
        assert_eq!(node.freq, Some(3));
        assert_eq!(node.max_desc, 42);
        assert_eq!(node.ids, vec![2, 900]);
        assert_eq!(node.offsets, vec![0, leaf_len]);
    }

    #[test]
    fn corrupt_nodes_yield_typed_errors() {
        let mut scratch = Vec::new();
        let mut arena = Vec::new();
        encode_node(Some(1), 1, &[], &mut scratch, &mut arena);
        let off = arena.len() as u64;
        encode_node(None, 1, &[(5, 0)], &mut scratch, &mut arena);
        let mut node = NodeBuf::default();
        // Offset past the arena.
        assert!(decode_node(&arena, arena.len() as u64, 10, &mut node).is_err());
        // Child id outside the vocabulary.
        assert!(matches!(
            decode_node(&arena, off, 5, &mut node),
            Err(IndexError::Corrupt(_))
        ));
        // A child whose offset is not below its parent's.
        let mut arena2 = Vec::new();
        encode_node(None, 1, &[(0, 7)], &mut scratch, &mut arena2);
        let mut padded = vec![0u8; 7];
        // Place the node at offset 7 so its child offset equals its own.
        padded.extend_from_slice(&arena2);
        assert!(matches!(
            decode_node(&padded, 7, 10, &mut node),
            Err(IndexError::Corrupt(_))
        ));
        // Frequency above the subtree bound.
        let mut arena3 = Vec::new();
        encode_node(Some(9), 3, &[], &mut scratch, &mut arena3);
        assert!(matches!(
            decode_node(&arena3, 0, 10, &mut node),
            Err(IndexError::Corrupt(_))
        ));
    }

    #[test]
    fn vocabulary_round_trips() {
        let mut vb = lash_core::vocabulary::VocabularyBuilder::new();
        let root = vb.intern("root");
        let mid = vb.child("mid", root);
        vb.child("leaf", mid);
        vb.intern("loner");
        let vocab = vb.finish().unwrap();
        let mut buf = Vec::new();
        encode_vocabulary(&vocab, &mut buf);
        let back = decode_vocabulary(&buf).unwrap();
        assert_eq!(back.len(), vocab.len());
        for item in vocab.items() {
            assert_eq!(back.name(item), vocab.name(item));
            assert_eq!(back.parent(item), vocab.parent(item));
        }
    }
}
