//! The concurrent query service: an atomically swappable snapshot of a
//! [`PatternIndexReader`] plus plain request/response structs, so a future
//! network frontend (HTTP, gRPC, anything) is a thin deserialize →
//! [`QueryService::execute`] → serialize shim.
//!
//! Snapshot semantics mirror `lash-store`'s sealed generations: a reader
//! is immutable; serving threads grab an [`Arc`] snapshot and query it
//! lock-free for as long as they like, while [`QueryService::swap`]
//! atomically installs the index built from a re-mine. In-flight queries
//! finish against the snapshot they started with; the old index's memory
//! is released when the last snapshot drops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use lash_core::vocabulary::ItemId;

use crate::reader::PatternIndexReader;
use crate::Result;

/// Registry handles the service reports into, looked up once at
/// construction so the per-query path never touches the registry's maps.
///
/// Each query type feeds a lifetime histogram ("p99 since start") *and* a
/// windowed one ("p99 over the last minute") — the RED metrics a live
/// `Metrics` admin scrape reads — plus windowed request/error rates.
struct ServiceMetrics {
    support_us: lash_obs::Histogram,
    enumerate_us: lash_obs::Histogram,
    top_k_us: lash_obs::Histogram,
    generalized_us: lash_obs::Histogram,
    support_win: lash_obs::window::WindowedHistogram,
    enumerate_win: lash_obs::window::WindowedHistogram,
    top_k_win: lash_obs::window::WindowedHistogram,
    generalized_win: lash_obs::window::WindowedHistogram,
    requests_win: lash_obs::window::WindowedCounter,
    errors_win: lash_obs::window::WindowedCounter,
    queries_served: lash_obs::Counter,
    swaps: lash_obs::Counter,
    /// Queries served against the current snapshot; reset on swap and
    /// reported in the swap event.
    snapshot_queries: AtomicU64,
}

impl ServiceMetrics {
    fn new() -> ServiceMetrics {
        let obs = lash_obs::global();
        ServiceMetrics {
            support_us: obs.histogram("query.support_us"),
            enumerate_us: obs.histogram("query.enumerate_us"),
            top_k_us: obs.histogram("query.top_k_us"),
            generalized_us: obs.histogram("query.generalized_us"),
            support_win: obs.windowed_histogram("query.support_us"),
            enumerate_win: obs.windowed_histogram("query.enumerate_us"),
            top_k_win: obs.windowed_histogram("query.top_k_us"),
            generalized_win: obs.windowed_histogram("query.generalized_us"),
            requests_win: obs.windowed_counter("query.requests"),
            errors_win: obs.windowed_counter("query.errors"),
            queries_served: obs.counter("index.queries_served"),
            swaps: obs.counter("index.swaps"),
            snapshot_queries: AtomicU64::new(0),
        }
    }
}

/// A query against the pattern index — the wire-format-agnostic request
/// shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Exact support of a pattern.
    Support {
        /// The pattern, most general to most specific as mined.
        items: Vec<ItemId>,
    },
    /// All patterns starting with a prefix, lexicographically.
    Enumerate {
        /// The prefix (empty enumerates every pattern).
        prefix: Vec<ItemId>,
        /// Result cap; `None` returns everything.
        limit: Option<usize>,
    },
    /// The `k` most frequent patterns extending a prefix.
    TopK {
        /// The prefix (empty ranks the whole index).
        prefix: Vec<ItemId>,
        /// How many patterns to return.
        k: usize,
    },
    /// Hierarchy-aware lookup: patterns of the same length each query item
    /// generalizes to.
    Generalized {
        /// The query sequence, typically phrased in leaf items.
        items: Vec<ItemId>,
    },
}

impl Query {
    /// The query's kind, as tagged on `query.request` spans.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Support { .. } => "support",
            Query::Enumerate { .. } => "enumerate",
            Query::TopK { .. } => "top_k",
            Query::Generalized { .. } => "generalized",
        }
    }
}

/// One matched pattern in a [`QueryReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHit {
    /// The pattern's items.
    pub items: Vec<ItemId>,
    /// Its mined frequency.
    pub frequency: u64,
}

/// A typed, wire-encodable query failure: the stable error surface a
/// remote client sees instead of a dropped connection. Deliberately
/// coarser than [`crate::IndexError`] — a client can act on "your request
/// named an unknown item" or "your envelope was malformed", but a server
/// I/O error is just `Internal` with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query referenced an item id outside the served vocabulary.
    UnknownItem(u32),
    /// The request could not be decoded from its wire envelope (bad tag,
    /// truncated fields, oversized counts).
    Malformed(String),
    /// The client spoke a protocol version this server does not serve.
    UnsupportedVersion {
        /// The version the client asked for.
        requested: u32,
        /// The version this server serves.
        serving: u32,
    },
    /// The served index failed internally; the message is diagnostic only.
    Internal(String),
}

impl QueryError {
    /// A stable machine-readable kind, mirroring the wire tag.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryError::UnknownItem(_) => "unknown_item",
            QueryError::Malformed(_) => "malformed",
            QueryError::UnsupportedVersion { .. } => "unsupported_version",
            QueryError::Internal(_) => "internal",
        }
    }

    /// Maps a service-side [`crate::IndexError`] onto the client-facing
    /// surface.
    pub fn from_index(e: &crate::IndexError) -> QueryError {
        match e {
            crate::IndexError::UnknownItem(id) => QueryError::UnknownItem(*id),
            other => QueryError::Internal(other.to_string()),
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownItem(id) => write!(f, "query names unknown item id {id}"),
            QueryError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            QueryError::UnsupportedVersion { requested, serving } => write!(
                f,
                "unsupported protocol version {requested} (server serves {serving})"
            ),
            QueryError::Internal(msg) => write!(f, "internal server error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The answer to a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryReply {
    /// Answer to [`Query::Support`]: the frequency, or `None` if the exact
    /// sequence was not mined as frequent.
    Support(Option<u64>),
    /// Answer to the pattern-list queries, in the query's result order.
    Patterns(Vec<PatternHit>),
    /// The query failed; the typed error travels back in the reply's place
    /// so one bad request in a batch does not poison its neighbours.
    Error(QueryError),
}

/// A `Send + Sync` serving handle over the current index snapshot.
///
/// ```
/// # use lash_core::prelude::*;
/// # use lash_index::{PatternIndexReader, QueryService, Query, QueryReply};
/// # let dir = std::env::temp_dir().join(format!("lash-svc-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// # let mut vb = VocabularyBuilder::new();
/// # let a = vb.intern("a");
/// # let b = vb.intern("b");
/// # let vocab = vb.finish().unwrap();
/// # let mut w = lash_index::PatternIndexWriter::create(&dir, &vocab).unwrap();
/// # w.add(&[a, b], 3).unwrap();
/// # w.finish().unwrap();
/// let service = QueryService::new(PatternIndexReader::open(&dir).unwrap());
/// let reply = service.execute(&Query::Support { items: vec![a, b] }).unwrap();
/// assert_eq!(reply, QueryReply::Support(Some(3)));
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct QueryService {
    current: RwLock<Arc<PatternIndexReader>>,
    metrics: ServiceMetrics,
}

impl QueryService {
    /// Creates a service serving `reader`.
    pub fn new(reader: PatternIndexReader) -> Self {
        QueryService {
            current: RwLock::new(Arc::new(reader)),
            metrics: ServiceMetrics::new(),
        }
    }

    /// The current snapshot. The returned [`Arc`] stays valid (and its
    /// answers self-consistent) across any number of [`QueryService::swap`]s;
    /// hold it for the duration of one logical request, re-acquire for the
    /// next to observe swaps.
    pub fn snapshot(&self) -> Arc<PatternIndexReader> {
        self.current.read().expect("index snapshot lock").clone()
    }

    /// Atomically replaces the served index (e.g. after re-mining an
    /// updated corpus), returning the previous snapshot. Queries already
    /// holding a snapshot are unaffected.
    ///
    /// Emits an `index.swap` event carrying how many queries the replaced
    /// snapshot served (the per-snapshot counter resets for the new one).
    pub fn swap(&self, reader: PatternIndexReader) -> Arc<PatternIndexReader> {
        let old = {
            let mut guard = self.current.write().expect("index snapshot lock");
            std::mem::replace(&mut *guard, Arc::new(reader))
        };
        let served = self.metrics.snapshot_queries.swap(0, Ordering::Relaxed);
        self.metrics.swaps.inc();
        lash_obs::global().emit_event("swap", "index.swap", &[("queries_served", served.into())]);
        old
    }

    /// Executes one request against the current snapshot, recording its
    /// latency into the per-query-type histogram (`query.support_us`,
    /// `query.enumerate_us`, `query.top_k_us`, `query.generalized_us`).
    ///
    /// Each request runs under a `query.request` span tagged with the
    /// query kind — its own trace root unless the caller already holds a
    /// span — so slow queries are promoted to the slow-op log with their
    /// trace id, and a failing request dumps the flight recorder.
    pub fn execute(&self, query: &Query) -> Result<QueryReply> {
        let _request_span = lash_obs::span!("query.request", kind = query.kind());
        let snapshot = self.snapshot();
        let result = self.execute_on(&snapshot, query);
        if let Err(e) = &result {
            lash_obs::flight::record_error("query.request", &e.to_string());
        }
        result
    }

    /// Executes a batch of requests against **one** snapshot, acquired
    /// once: the daemon's worker threads batch queued requests precisely to
    /// amortize this acquisition, and a batch is guaranteed a self-
    /// consistent view even if a swap lands mid-way through it. Failures
    /// come back per-query as [`QueryReply::Error`], never as a dropped
    /// batch.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<QueryReply> {
        let snapshot = self.snapshot();
        queries
            .iter()
            .map(|query| {
                let _request_span = lash_obs::span!("query.request", kind = query.kind());
                match self.execute_on(&snapshot, query) {
                    Ok(reply) => reply,
                    Err(e) => {
                        lash_obs::flight::record_error("query.request", &e.to_string());
                        QueryReply::Error(QueryError::from_index(&e))
                    }
                }
            })
            .collect()
    }

    fn execute_on(&self, snapshot: &PatternIndexReader, query: &Query) -> Result<QueryReply> {
        let started = Instant::now();
        self.metrics.requests_win.inc();
        let run = || -> Result<(QueryReply, &lash_obs::Histogram, &lash_obs::window::WindowedHistogram)> {
            Ok(match query {
                Query::Support { items } => (
                    QueryReply::Support(snapshot.support(items)?),
                    &self.metrics.support_us,
                    &self.metrics.support_win,
                ),
                Query::Enumerate { prefix, limit } => (
                    QueryReply::Patterns(hits(snapshot.enumerate(prefix, *limit)?)),
                    &self.metrics.enumerate_us,
                    &self.metrics.enumerate_win,
                ),
                Query::TopK { prefix, k } => (
                    QueryReply::Patterns(hits(snapshot.top_k(prefix, *k)?)),
                    &self.metrics.top_k_us,
                    &self.metrics.top_k_win,
                ),
                Query::Generalized { items } => (
                    QueryReply::Patterns(hits(snapshot.lookup_generalized(items)?)),
                    &self.metrics.generalized_us,
                    &self.metrics.generalized_win,
                ),
            })
        };
        let (reply, hist, win) = run().inspect_err(|_| self.metrics.errors_win.inc())?;
        let elapsed = started.elapsed();
        hist.record_duration(elapsed);
        win.record_duration(elapsed);
        self.metrics.queries_served.inc();
        self.metrics
            .snapshot_queries
            .fetch_add(1, Ordering::Relaxed);
        Ok(reply)
    }
}

fn hits(raw: Vec<(Vec<ItemId>, u64)>) -> Vec<PatternHit> {
    raw.into_iter()
        .map(|(items, frequency)| PatternHit { items, frequency })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The service (and the reader inside it) must be shareable across
    /// serving threads.
    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryService>();
        assert_send_sync::<Arc<PatternIndexReader>>();
    }
}
