//! The index writer: one streaming pass over the lexicographically sorted
//! pattern stream, emitting the trie bottom-up into checksummed block
//! frames.
//!
//! The writer keeps only the *open path* in memory — the trie nodes from
//! the root to the most recently added pattern — so building the index
//! over millions of patterns holds O(pattern length · fan-out) state, in
//! the spirit of keeping the result set in secondary memory rather than
//! RAM (Grahne & Zhu). When the next pattern diverges from the open path,
//! the abandoned suffix can never receive further children (the input is
//! sorted) and is serialized immediately.
//!
//! Sealing mirrors `lash-store`: the trie file carries no authority on its
//! own — the directory only becomes an index when
//! [`PatternIndexWriter::finish`] writes the manifest (temp file, rename,
//! directory fsync), so a crashed build is never mistaken for a complete
//! index.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use lash_core::pattern::{sort_patterns_lexicographic, Pattern};
use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame;

use crate::format::{self, IndexManifest, BLOCK_CHECKSUM, INDEX_FORMAT_VERSION};
use crate::{IndexError, Result};

/// One node of the currently open path.
struct OpenNode {
    /// The item on the edge from the parent (unused for the root).
    item: u32,
    /// Frequency if the path down to this node is itself a pattern.
    freq: Option<u64>,
    /// Running maximum pattern frequency in the subtree (including self).
    max_desc: u64,
    /// Sealed children: `(item id, arena offset)`, ascending in both.
    children: Vec<(u32, u64)>,
}

impl OpenNode {
    fn new(item: u32, freq: Option<u64>) -> Self {
        OpenNode {
            item,
            freq,
            max_desc: freq.unwrap_or(0),
            children: Vec::new(),
        }
    }
}

/// Statistics of a sealed index, returned by
/// [`PatternIndexWriter::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSummary {
    /// Number of indexed patterns.
    pub num_patterns: u64,
    /// Number of trie nodes, including the root.
    pub num_nodes: u64,
    /// Bytes of the node arena (before frame overhead).
    pub arena_bytes: u64,
    /// Maximum pattern frequency (0 when the index is empty).
    pub max_frequency: u64,
}

/// Streaming builder of an on-disk pattern index.
///
/// Patterns must arrive **strictly ascending in lexicographic item
/// order** — the deterministic order mining output sorts into (see
/// [`sort_patterns_lexicographic`]); out-of-order or duplicate input is
/// rejected with [`IndexError::UnsortedInput`]. Use [`write_patterns`] to
/// index an unsorted slice in one call.
pub struct PatternIndexWriter {
    dir: PathBuf,
    vocab: Vocabulary,
    file: BufWriter<File>,
    /// `stack[0]` is the root; `stack[d]` is the open node at depth `d`.
    stack: Vec<OpenNode>,
    /// Items of the most recently added pattern.
    last: Vec<u32>,
    /// The block being assembled; sealed into a frame at the budget.
    block: Vec<u8>,
    block_budget: usize,
    /// Logical arena bytes emitted so far (frames excluded).
    arena_len: u64,
    num_patterns: u64,
    num_nodes: u64,
    max_frequency: u64,
    /// Scratch for group-varint child-id deltas.
    scratch: Vec<u32>,
}

impl PatternIndexWriter {
    /// Creates a new index at `dir` for patterns over `vocab`, with the
    /// default block budget ([`frame::DEFAULT_BLOCK_BYTES`]).
    ///
    /// The directory is created if missing; an existing manifest makes
    /// this fail with [`IndexError::AlreadyExists`] — indexes are
    /// immutable, a re-mine builds a fresh one and swaps it in.
    pub fn create(dir: impl AsRef<Path>, vocab: &Vocabulary) -> Result<Self> {
        Self::create_with_budget(dir, vocab, frame::DEFAULT_BLOCK_BYTES)
    }

    /// [`PatternIndexWriter::create`] with an explicit node-block payload
    /// budget in bytes (clamped to ≥ 1; mainly for tests that want many
    /// tiny blocks).
    pub fn create_with_budget(
        dir: impl AsRef<Path>,
        vocab: &Vocabulary,
        block_budget: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if dir.join(format::MANIFEST_FILE).exists() {
            return Err(IndexError::AlreadyExists(dir));
        }
        let mut file = BufWriter::new(File::create(dir.join(format::TRIE_FILE))?);
        let mut header = Vec::new();
        format::encode_trie_header(INDEX_FORMAT_VERSION, &mut header);
        frame::write_frame(&header, &mut file)?;
        Ok(PatternIndexWriter {
            dir,
            vocab: vocab.clone(),
            file,
            stack: vec![OpenNode::new(0, None)],
            last: Vec::new(),
            block: Vec::new(),
            block_budget: block_budget.max(1),
            arena_len: 0,
            num_patterns: 0,
            num_nodes: 0,
            max_frequency: 0,
            scratch: Vec::new(),
        })
    }

    /// Number of patterns added so far.
    pub fn len(&self) -> u64 {
        self.num_patterns
    }

    /// True if no pattern has been added yet.
    pub fn is_empty(&self) -> bool {
        self.num_patterns == 0
    }

    /// Adds the next pattern. `items` must be non-empty, in-vocabulary,
    /// and strictly greater (lexicographically) than the previous pattern.
    pub fn add(&mut self, items: &[ItemId], frequency: u64) -> Result<()> {
        if items.is_empty() {
            return Err(IndexError::EmptyPattern);
        }
        for &item in items {
            if item.index() >= self.vocab.len() {
                return Err(IndexError::UnknownItem(item.as_u32()));
            }
        }
        // Longest common prefix with the previous pattern decides how much
        // of the open path survives.
        let common = self
            .last
            .iter()
            .zip(items.iter())
            .take_while(|(a, b)| **a == b.as_u32())
            .count();
        // Sorted-strictly-ascending check: the new pattern must extend the
        // common prefix with a larger item than the old one did — or extend
        // the old pattern itself.
        let extends = common == self.last.len() && items.len() > common;
        let diverges_up = common < self.last.len()
            && common < items.len()
            && items[common].as_u32() > self.last[common];
        if !(extends || diverges_up) {
            return Err(IndexError::UnsortedInput {
                position: self.num_patterns,
            });
        }
        // Seal the abandoned suffix of the open path (deepest first).
        while self.stack.len() - 1 > common {
            self.seal_top()?;
        }
        // Open the new suffix.
        for (d, &item) in items.iter().enumerate().skip(common) {
            let terminal = d + 1 == items.len();
            self.stack
                .push(OpenNode::new(item.as_u32(), terminal.then_some(frequency)));
        }
        // Propagate the frequency bound up the whole open path now; sealed
        // descendants have already folded theirs into their parents.
        for node in &mut self.stack {
            node.max_desc = node.max_desc.max(frequency);
        }
        self.last.clear();
        self.last.extend(items.iter().map(|i| i.as_u32()));
        self.num_patterns += 1;
        self.max_frequency = self.max_frequency.max(frequency);
        Ok(())
    }

    /// Serializes the deepest open node and registers it with its parent.
    fn seal_top(&mut self) -> Result<()> {
        let node = self.stack.pop().expect("seal_top never pops the root");
        let offset = self.emit_node(node.freq, node.max_desc, &node.children)?;
        let parent = self.stack.last_mut().expect("root below every sealed node");
        parent.children.push((node.item, offset));
        parent.max_desc = parent.max_desc.max(node.max_desc);
        Ok(())
    }

    /// Appends one serialized node to the arena, sealing a block frame
    /// when the budget is reached; returns the node's arena offset.
    fn emit_node(
        &mut self,
        freq: Option<u64>,
        max_desc: u64,
        children: &[(u32, u64)],
    ) -> Result<u64> {
        let offset = self.arena_len;
        let before = self.block.len();
        format::encode_node(freq, max_desc, children, &mut self.scratch, &mut self.block);
        self.arena_len += (self.block.len() - before) as u64;
        self.num_nodes += 1;
        if self.block.len() >= self.block_budget {
            self.flush_block()?;
        }
        Ok(offset)
    }

    /// Seals the current block into a checksummed frame.
    fn flush_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        frame::write_frame_with(&self.block, &mut self.file, BLOCK_CHECKSUM)?;
        self.block.clear();
        Ok(())
    }

    /// Seals the trie (root node last), fsyncs it, and commits the
    /// manifest — the atomic point at which the directory becomes an
    /// index.
    pub fn finish(mut self) -> Result<IndexSummary> {
        let _build_span = lash_obs::span!(
            "index.build",
            patterns = self.num_patterns,
            nodes = self.num_nodes,
        );
        while self.stack.len() > 1 {
            self.seal_top()?;
        }
        let root = self.stack.pop().expect("the root is always open");
        let root_offset = self.emit_node(root.freq, root.max_desc, &root.children)?;
        self.flush_block()?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        let manifest = IndexManifest {
            version: INDEX_FORMAT_VERSION,
            num_patterns: self.num_patterns,
            num_nodes: self.num_nodes,
            arena_len: self.arena_len,
            root_offset,
            max_frequency: self.max_frequency,
        };
        write_manifest(&self.dir, &manifest, &self.vocab)?;
        Ok(IndexSummary {
            num_patterns: manifest.num_patterns,
            num_nodes: manifest.num_nodes,
            arena_bytes: manifest.arena_len,
            max_frequency: manifest.max_frequency,
        })
    }
}

/// Writes `INDEX.lash` via temp file + rename + directory fsync — the
/// same durable commit protocol as `lash-store` manifests: the manifest's
/// bytes reach disk before the rename exposes them, and the directory
/// fsync makes the rename survive a power loss.
fn write_manifest(dir: &Path, manifest: &IndexManifest, vocab: &Vocabulary) -> Result<()> {
    let tmp = dir.join(format!("{}.tmp", format::MANIFEST_FILE));
    {
        let mut file = BufWriter::new(File::create(&tmp)?);
        let mut buf = Vec::new();
        format::encode_manifest_header(manifest, &mut buf);
        frame::write_frame(&buf, &mut file)?;
        buf.clear();
        format::encode_vocabulary(vocab, &mut buf);
        frame::write_frame(&buf, &mut file)?;
        file.flush()?;
        file.get_ref().sync_all()?;
    }
    fs::rename(&tmp, dir.join(format::MANIFEST_FILE))?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Indexes a slice of mined patterns in one call: sorts a copy into the
/// canonical lexicographic order and streams it through a
/// [`PatternIndexWriter`].
///
/// This is the convenience path from `LashResult::patterns()` (which is
/// sorted by descending frequency, not lexicographically) to a finished
/// index.
pub fn write_patterns(
    dir: impl AsRef<Path>,
    vocab: &Vocabulary,
    patterns: &[Pattern],
) -> Result<IndexSummary> {
    let mut sorted: Vec<Pattern> = patterns.to_vec();
    sort_patterns_lexicographic(&mut sorted);
    let mut writer = PatternIndexWriter::create(dir, vocab)?;
    for p in &sorted {
        writer.add(&p.items, p.frequency)?;
    }
    writer.finish()
}
