//! The index reader: opens an index cold, verifies every block frame,
//! decodes the node arena **once** into a flat structure-of-arrays trie,
//! and answers exact-support, prefix-enumeration, top-k, and
//! hierarchy-aware queries over it.
//!
//! The one-pass decode at open time doubles as an exhaustive validation
//! pass — every node, child id, and child offset in the file is checked
//! against the format invariants before the first query runs, so
//! corruption the frame checksums cannot see (a logically inconsistent
//! but checksum-passing file) still surfaces as a typed [`IndexError`] at
//! open, never as a panic or a runaway walk later. After the decode the
//! compressed arena is dropped; queries run over dense arrays: an
//! exact-support lookup is one binary search per pattern item, with no
//! allocation and no varint work on the hot path.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame::{self, FrameRead};

use crate::format::{self, IndexManifest, NodeBuf, BLOCK_CHECKSUM};
use crate::{IndexError, Result};

/// A pattern index opened cold from its manifest, ready to serve queries
/// from any number of threads (`&self` everywhere; the reader is `Send +
/// Sync`).
///
/// Internally a structure-of-arrays trie in arena order (children before
/// parents, the root last): node `n`'s children are
/// `edge_ids[child_start[n]..child_start[n+1]]` (ascending item ids) with
/// the subtree of child `i` rooted at node `edge_targets[child_start[n]
/// + i]`.
pub struct PatternIndexReader {
    dir: PathBuf,
    manifest: IndexManifest,
    vocab: Vocabulary,
    /// Pattern frequency + 1 per node; 0 when the node is no terminal.
    freq: Vec<u64>,
    /// Maximum pattern frequency in each node's subtree (including self).
    max_desc: Vec<u64>,
    /// Per node, the start of its edge range; `len = nodes + 1`.
    child_start: Vec<u32>,
    /// Edge labels (child item ids), ascending within each node.
    edge_ids: Vec<u32>,
    /// Edge targets (child node indices).
    edge_targets: Vec<u32>,
    /// The root node's index (the last node of the arena).
    root: u32,
}

impl PatternIndexReader {
    /// Opens the index at `dir`: reads and validates the manifest
    /// (rejecting future format versions with
    /// [`IndexError::UnsupportedVersion`]), loads the trie file verifying
    /// every block frame's checksum, and decodes every node, validating
    /// the whole structure before the first query.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_inner(dir.as_ref()).inspect_err(|e| {
            lash_obs::flight::record_error("index.open", &e.to_string());
        })
    }

    fn open_inner(dir: &Path) -> Result<Self> {
        let dir = dir.to_path_buf();
        let mut file = BufReader::new(File::open(dir.join(format::MANIFEST_FILE))?);
        let header = read_required_frame(&mut file, "index manifest header")?;
        let manifest = format::decode_manifest_header(&header)?;
        let vocab_bytes = read_required_frame(&mut file, "index manifest vocabulary")?;
        let vocab = format::decode_vocabulary(&vocab_bytes)?;

        let mut trie = BufReader::new(File::open(dir.join(format::TRIE_FILE))?);
        let trie_header = read_required_frame(&mut trie, "trie header")?;
        let trie_version = format::decode_trie_header(&trie_header)?;
        if trie_version != manifest.version {
            return Err(IndexError::Corrupt(format!(
                "trie file version {trie_version} does not match manifest version {}",
                manifest.version
            )));
        }
        let mut arena = Vec::with_capacity(manifest.arena_len.min(1 << 30) as usize);
        let mut block = Vec::new();
        while let Some(len) = frame::read_frame_into(&mut trie, &mut block, BLOCK_CHECKSUM)? {
            arena.extend_from_slice(&block[..len]);
            if arena.len() as u64 > manifest.arena_len {
                return Err(IndexError::Corrupt(format!(
                    "trie holds more than the {} arena bytes the manifest declares",
                    manifest.arena_len
                )));
            }
        }
        if (arena.len() as u64) < manifest.arena_len {
            return Err(IndexError::Corrupt(format!(
                "trie holds {} arena bytes, manifest declares {}",
                arena.len(),
                manifest.arena_len
            )));
        }

        // Sequential decode: nodes are laid out back to back, children
        // before parents, so every child offset must land exactly on an
        // already-decoded node boundary.
        let mut offsets: Vec<u64> = Vec::new();
        let mut freq = Vec::new();
        let mut max_desc = Vec::new();
        let mut child_start: Vec<u32> = vec![0];
        let mut edge_ids: Vec<u32> = Vec::new();
        let mut edge_targets: Vec<u32> = Vec::new();
        let mut node = NodeBuf::default();
        let mut pos = 0u64;
        let mut patterns = 0u64;
        let mut highest = 0u64;
        while pos < manifest.arena_len {
            let consumed = format::decode_node(&arena, pos, vocab.len() as u32, &mut node)?;
            // The subtree bound must be exactly what the subtree holds —
            // children are decoded first, so their (already verified)
            // bounds are at hand. A wrong bound would silently corrupt
            // top-k pruning, so it is rejected here, not discovered there.
            let mut expect_bound = node.freq.unwrap_or(0);
            for (&id, &child_off) in node.ids.iter().zip(node.offsets.iter()) {
                let target = offsets.binary_search(&child_off).map_err(|_| {
                    IndexError::Corrupt(format!(
                        "child offset {child_off} does not point at a node boundary"
                    ))
                })?;
                expect_bound = expect_bound.max(max_desc[target]);
                edge_ids.push(id);
                edge_targets.push(target as u32);
            }
            if node.max_desc != expect_bound {
                return Err(IndexError::Corrupt(format!(
                    "node at offset {pos} declares subtree bound {}, subtree holds {expect_bound}",
                    node.max_desc
                )));
            }
            if edge_ids.len() > u32::MAX as usize || offsets.len() >= u32::MAX as usize {
                return Err(IndexError::Corrupt(
                    "trie exceeds u32::MAX nodes or edges".into(),
                ));
            }
            child_start.push(edge_ids.len() as u32);
            if let Some(f) = node.freq {
                patterns += 1;
                highest = highest.max(f);
            }
            freq.push(node.freq.map_or(0, |f| f + 1));
            max_desc.push(node.max_desc);
            offsets.push(pos);
            pos += consumed as u64;
        }
        if offsets.is_empty() {
            return Err(IndexError::Corrupt("trie holds no nodes".into()));
        }
        // The root is the last node by construction; the manifest must
        // agree, and its counts must match what the arena actually holds.
        let root_offset = *offsets.last().expect("non-empty checked above");
        if manifest.root_offset != root_offset {
            return Err(IndexError::Corrupt(format!(
                "manifest root offset {} is not the last node's offset {root_offset}",
                manifest.root_offset
            )));
        }
        if manifest.num_nodes != offsets.len() as u64 {
            return Err(IndexError::Corrupt(format!(
                "manifest declares {} nodes, trie holds {}",
                manifest.num_nodes,
                offsets.len()
            )));
        }
        if manifest.num_patterns != patterns {
            return Err(IndexError::Corrupt(format!(
                "manifest declares {} patterns, trie holds {patterns}",
                manifest.num_patterns
            )));
        }
        if manifest.max_frequency != highest {
            return Err(IndexError::Corrupt(format!(
                "manifest declares max frequency {}, trie holds {highest}",
                manifest.max_frequency
            )));
        }
        let root = (offsets.len() - 1) as u32;
        Ok(PatternIndexReader {
            dir,
            manifest,
            vocab,
            freq,
            max_desc,
            child_start,
            edge_ids,
            edge_targets,
            root,
        })
    }

    /// The index directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest snapshot this reader loaded.
    pub fn manifest(&self) -> &IndexManifest {
        &self.manifest
    }

    /// The vocabulary (and hierarchy) the indexed patterns are phrased in.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of indexed patterns.
    pub fn num_patterns(&self) -> u64 {
        self.manifest.num_patterns
    }

    /// True if the index holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.manifest.num_patterns == 0
    }

    /// The highest pattern frequency in the index (0 when empty).
    pub fn max_frequency(&self) -> u64 {
        self.manifest.max_frequency
    }

    /// The edge range of node `n`.
    #[inline]
    fn edges(&self, n: u32) -> std::ops::Range<usize> {
        self.child_start[n as usize] as usize..self.child_start[n as usize + 1] as usize
    }

    /// The child of `n` along `item`, by binary search over the sorted
    /// edge labels.
    #[inline]
    fn child(&self, n: u32, item: u32) -> Option<u32> {
        let range = self.edges(n);
        let ids = &self.edge_ids[range.clone()];
        ids.binary_search(&item)
            .ok()
            .map(|i| self.edge_targets[range.start + i])
    }

    /// The pattern frequency at node `n`, if the path to it is a pattern.
    #[inline]
    fn node_freq(&self, n: u32) -> Option<u64> {
        self.freq[n as usize].checked_sub(1)
    }

    /// Validates query items against the vocabulary ids the index was
    /// built over — unknown ids are a typed error, not a panic.
    fn validate(&self, items: &[ItemId]) -> Result<()> {
        for &item in items {
            if item.index() >= self.vocab.len() {
                return Err(IndexError::UnknownItem(item.as_u32()));
            }
        }
        Ok(())
    }

    /// Walks from the root along `items`; `None` when the path leaves the
    /// trie.
    #[inline]
    fn descend(&self, items: &[ItemId]) -> Option<u32> {
        let mut n = self.root;
        for &item in items {
            n = self.child(n, item.as_u32())?;
        }
        Some(n)
    }

    /// The exact support of `items`, or `None` if it was not mined as a
    /// frequent pattern. One binary search per item; no allocation.
    pub fn support(&self, items: &[ItemId]) -> Result<Option<u64>> {
        self.validate(items)?;
        Ok(self.descend(items).and_then(|n| self.node_freq(n)))
    }

    /// Every indexed pattern starting with `prefix` (the prefix itself
    /// included if it is a pattern), in lexicographic order, capped at
    /// `limit` results (`None` for all).
    pub fn enumerate(
        &self,
        prefix: &[ItemId],
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<ItemId>, u64)>> {
        self.validate(prefix)?;
        let cap = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        if cap == 0 {
            return Ok(out);
        }
        let Some(start) = self.descend(prefix) else {
            return Ok(out);
        };
        // Iterative DFS in edge order: visiting a node before its children
        // yields lexicographic output (a pattern sorts before its
        // extensions).
        let mut path: Vec<ItemId> = prefix.to_vec();
        let mut stack: Vec<std::ops::Range<usize>> = Vec::new();
        let mut current = start;
        loop {
            if let Some(freq) = self.node_freq(current) {
                out.push((path.clone(), freq));
                if out.len() >= cap {
                    return Ok(out);
                }
            }
            stack.push(self.edges(current));
            loop {
                let Some(top) = stack.last_mut() else {
                    return Ok(out);
                };
                if let Some(edge) = top.next() {
                    path.push(ItemId::from_u32(self.edge_ids[edge]));
                    current = self.edge_targets[edge];
                    break;
                }
                stack.pop();
                path.pop();
            }
        }
    }

    /// The `k` most frequent patterns extending `prefix` (the prefix
    /// itself included if it is a pattern), ordered by descending
    /// frequency with ties broken lexicographically.
    ///
    /// This is a best-first search over the per-node
    /// max-subtree-frequency annotations: a subtree enters the frontier
    /// with its bound and is only expanded once its bound is the highest
    /// outstanding — so subtrees that cannot reach the current k-th
    /// frequency are never visited at all.
    pub fn top_k(&self, prefix: &[ItemId], k: usize) -> Result<Vec<(Vec<ItemId>, u64)>> {
        self.validate(prefix)?;
        let mut out = Vec::new();
        if k == 0 {
            return Ok(out);
        }
        let Some(start) = self.descend(prefix) else {
            return Ok(out);
        };
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        heap.push(Candidate {
            bound: self.max_desc[start as usize],
            is_pattern: false,
            items: prefix.iter().map(|i| i.as_u32()).collect(),
            node: start,
        });
        while let Some(cand) = heap.pop() {
            if cand.is_pattern {
                out.push((
                    cand.items.iter().map(|&v| ItemId::from_u32(v)).collect(),
                    cand.bound,
                ));
                if out.len() >= k {
                    break;
                }
                continue;
            }
            if let Some(freq) = self.node_freq(cand.node) {
                heap.push(Candidate {
                    bound: freq,
                    is_pattern: true,
                    items: cand.items.clone(),
                    node: cand.node,
                });
            }
            for edge in self.edges(cand.node) {
                let child = self.edge_targets[edge];
                let mut items = Vec::with_capacity(cand.items.len() + 1);
                items.extend_from_slice(&cand.items);
                items.push(self.edge_ids[edge]);
                heap.push(Candidate {
                    bound: self.max_desc[child as usize],
                    is_pattern: false,
                    items,
                    node: child,
                });
            }
        }
        Ok(out)
    }

    /// Hierarchy-aware lookup: every pattern `P` with `|P| = |items|`
    /// where each query item **generalizes to** the pattern item at its
    /// position (`items[i] →* P[i]` — equal, or `P[i]` an ancestor of
    /// `items[i]`), in lexicographic order.
    ///
    /// This answers queries phrased in the items that actually occur in
    /// the data (leaves) against the generalized patterns LASH mined: a
    /// query for `["Canon EOS 70D", "tripod"]` finds `["camera",
    /// "tripod"]`. Unknown item ids surface as
    /// [`IndexError::UnknownItem`].
    pub fn lookup_generalized(&self, items: &[ItemId]) -> Result<Vec<(Vec<ItemId>, u64)>> {
        self.validate(items)?;
        // Per position, the sorted set of ids the pattern may use there:
        // the query item and all its ancestors.
        let mut admissible: Vec<Vec<u32>> = Vec::with_capacity(items.len());
        for &item in items {
            let chain = self
                .vocab
                .try_chain(item)
                .map_err(|_| IndexError::UnknownItem(item.as_u32()))?;
            let mut ids: Vec<u32> = chain.iter().map(|a| a.as_u32()).collect();
            ids.sort_unstable();
            admissible.push(ids);
        }
        let mut out = Vec::new();
        if items.is_empty() {
            return Ok(out);
        }
        // DFS constrained to admissible ids per depth; only full-length
        // matches are collected. The admissible set drives the probe: per
        // visited node, each of its ~depth-of-hierarchy admissible ids is
        // binary-searched in the node's sorted edge labels — not the other
        // way around, which would scan every edge of a high-fan-out node
        // (the root has one child per distinct first item) per query.
        struct Frame {
            /// Matching edge indices, ascending (admissible ids are probed
            /// in ascending order, so matches come out sorted and the DFS
            /// stays lexicographic).
            matches: Vec<usize>,
            next: usize,
        }
        let matched_edges = |node: u32, allowed: &[u32]| -> Vec<usize> {
            let range = self.edges(node);
            let ids = &self.edge_ids[range.clone()];
            let mut matches = Vec::with_capacity(allowed.len());
            for aid in allowed {
                if let Ok(i) = ids.binary_search(aid) {
                    matches.push(range.start + i);
                }
            }
            matches
        };
        let mut stack: Vec<Frame> = vec![Frame {
            matches: matched_edges(self.root, &admissible[0]),
            next: 0,
        }];
        let mut path: Vec<ItemId> = Vec::new();
        while let Some(top) = stack.last_mut() {
            let Some(&edge) = top.matches.get(top.next) else {
                stack.pop();
                path.pop();
                continue;
            };
            top.next += 1;
            let child = self.edge_targets[edge];
            path.push(ItemId::from_u32(self.edge_ids[edge]));
            if path.len() == items.len() {
                if let Some(freq) = self.node_freq(child) {
                    out.push((path.clone(), freq));
                }
                path.pop();
            } else {
                let matches = matched_edges(child, &admissible[path.len()]);
                stack.push(Frame { matches, next: 0 });
            }
        }
        Ok(out)
    }
}

/// A frontier entry of the top-k best-first search.
///
/// Ordered so the [`BinaryHeap`] pops: higher bound first; at equal
/// bounds, lexicographically smaller items first (so a subtree that may
/// contain an equal-frequency but lexicographically earlier pattern is
/// expanded before a later pattern is emitted); at equal items, the
/// sealed pattern before its own subtree. The result: output order is
/// fully deterministic — descending frequency, ties by ascending items.
struct Candidate {
    bound: u64,
    is_pattern: bool,
    items: Vec<u32>,
    node: u32,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.items.cmp(&self.items))
            .then_with(|| self.is_pattern.cmp(&other.is_pattern))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Candidate {}

/// Reads one frame that must exist (EOF is corruption).
fn read_required_frame(reader: &mut impl std::io::Read, what: &str) -> Result<Vec<u8>> {
    match frame::read_frame(reader)? {
        FrameRead::Payload(bytes) => Ok(bytes),
        FrameRead::Eof => Err(IndexError::Corrupt(format!("missing {what} frame"))),
    }
}
