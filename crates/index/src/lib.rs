//! # lash-index
//!
//! An immutable, compressed **on-disk pattern index** over the output of a
//! LASH mining run, plus a concurrent query service. Mining produces the
//! frequent generalized sequences; this crate is what makes them *servable*:
//! instead of re-mining to answer "what is the support of this sequence?",
//! the mined `PatternSet` is laid out once as a block-structured prefix trie
//! and then queried at memory speed, from any number of threads, behind an
//! atomically swappable snapshot.
//!
//! ## Layout
//!
//! An index is a directory of two files, mirroring `lash-store`'s
//! manifest-plus-payload conventions (checksummed `lash-encoding` frames,
//! a versioned manifest with an `UnsupportedVersion` guard, temp-file +
//! rename sealing):
//!
//! ```text
//! index/
//! ├── INDEX.lash     # manifest: format version, pattern/node counts,
//! │                  # root offset, vocabulary + hierarchy
//! └── trie.lash      # the trie: blocks of serialized nodes wrapped in
//!                    # checksummed frames
//! ```
//!
//! The trie is written **bottom-up** from the lexicographically sorted
//! pattern stream (the order `lash-core` guarantees — see
//! [`lash_core::pattern::sort_patterns_lexicographic`]), so every node is
//! serialized after its children and stores absolute arena offsets to them.
//! A node holds its own frequency (if the path to it is a mined pattern),
//! the **maximum frequency over its whole subtree** (the top-k pruning
//! bound), and its sorted children — ids delta-encoded with the
//! [`lash_encoding::group_varint`] codec, offsets as ascending varint
//! deltas. Nodes are packed into blocks of
//! [`lash_encoding::frame::DEFAULT_BLOCK_BYTES`] and each block is wrapped
//! in a checksummed frame, so truncation and bit flips surface as typed
//! [`IndexError`]s — never panics.
//!
//! ## Queries
//!
//! [`PatternIndexReader`] answers:
//!
//! * **exact support** — [`PatternIndexReader::support`];
//! * **prefix / extension enumeration** — [`PatternIndexReader::enumerate`];
//! * **top-k by frequency** — [`PatternIndexReader::top_k`], a best-first
//!   search over the per-node max-descendant-frequency bounds, so whole
//!   subtrees that cannot reach the current k-th frequency are pruned;
//! * **hierarchy-aware lookup** — [`PatternIndexReader::lookup_generalized`]:
//!   every query item expands to its ancestor chain via the vocabulary
//!   hierarchy ([`lash_core::Vocabulary::try_chain`]), so a query phrased
//!   in leaf items ("Canon EOS 70D") finds the generalized patterns LASH
//!   actually mined ("camera").
//!
//! [`QueryService`] wraps a reader in an [`std::sync::Arc`] snapshot that
//! any number of threads query concurrently and that
//! [`QueryService::swap`] replaces atomically after a re-mine — in-flight
//! queries keep their old snapshot, new queries see the new index; the
//! same snapshot semantics as `lash-store`'s sealed generations. The
//! [`Query`]/[`QueryReply`] request/response structs make a future network
//! frontend a thin shim over [`QueryService::execute`].
//!
//! ```
//! use lash_core::prelude::*;
//! use lash_index::{PatternIndexReader, PatternIndexWriter, QueryService};
//!
//! let dir = std::env::temp_dir().join(format!("lash-index-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut vb = VocabularyBuilder::new();
//! let dog = vb.intern("dog");
//! let poodle = vb.child("poodle", dog);
//! let walks = vb.intern("walks");
//! let vocab = vb.finish().unwrap();
//!
//! let mut db = SequenceDatabase::new();
//! db.push(&[poodle, walks]);
//! db.push(&[dog, walks]);
//!
//! let params = GsmParams::new(2, 0, 2).unwrap();
//! let result = Lash::default().mine(&db, &vocab, &params).unwrap();
//!
//! // Lay the mined patterns out as an on-disk index and serve them.
//! lash_index::write_patterns(&dir, &vocab, result.patterns()).unwrap();
//! let service = QueryService::new(PatternIndexReader::open(&dir).unwrap());
//! let snapshot = service.snapshot();
//! assert_eq!(snapshot.support(&[dog, walks]).unwrap(), Some(2));
//! // A query phrased in the leaf item finds the generalized pattern.
//! let hits = snapshot.lookup_generalized(&[poodle, walks]).unwrap();
//! assert_eq!(hits, vec![(vec![dog, walks], 2)]);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod reader;
pub mod service;
pub mod writer;

pub use format::{INDEX_FORMAT_VERSION, MIN_INDEX_FORMAT_VERSION};
pub use reader::PatternIndexReader;
pub use service::{PatternHit, Query, QueryError, QueryReply, QueryService};
pub use writer::{write_patterns, IndexSummary, PatternIndexWriter};

use std::path::PathBuf;

use lash_encoding::DecodeError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Errors surfaced by the pattern index.
#[derive(Debug)]
pub enum IndexError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A varint/frame/group-varint decoding error.
    Decode(DecodeError),
    /// The on-disk data violates a format invariant (including checksum
    /// failures and truncation, which the frame layer reports as I/O
    /// errors of the corresponding kinds).
    Corrupt(String),
    /// The index was written by a format version this build does not read —
    /// typically a newer build. Guarded from day one so future bumps
    /// surface here instead of being misparsed.
    UnsupportedVersion {
        /// The version found on disk.
        found: u32,
    },
    /// `PatternIndexWriter::create` refused to overwrite an existing index
    /// (indexes are immutable; re-mining builds a new one and swaps it in).
    AlreadyExists(PathBuf),
    /// A pattern or query referenced an item id outside the index
    /// vocabulary.
    UnknownItem(u32),
    /// The pattern stream fed to the writer was not strictly ascending in
    /// lexicographic order (duplicates included) — the trie is laid out in
    /// one pass and cannot reorder.
    UnsortedInput {
        /// Zero-based position of the offending pattern in the stream.
        position: u64,
    },
    /// An empty pattern was fed to the writer (the root is not a pattern).
    EmptyPattern,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "I/O error: {e}"),
            IndexError::Decode(e) => write!(f, "decode error: {e}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            IndexError::UnsupportedVersion { found } => write!(
                f,
                "unsupported index format version {found} (this build reads versions \
                 {MIN_INDEX_FORMAT_VERSION}..={INDEX_FORMAT_VERSION}); rebuild the index or \
                 upgrade lash-index"
            ),
            IndexError::AlreadyExists(p) => write!(
                f,
                "index already exists at {} (indexes are immutable; build a new one and swap)",
                p.display()
            ),
            IndexError::UnknownItem(id) => write!(f, "item id {id} not in index vocabulary"),
            IndexError::UnsortedInput { position } => write!(
                f,
                "pattern stream not strictly lexicographically ascending at position {position}"
            ),
            IndexError::EmptyPattern => write!(f, "empty patterns cannot be indexed"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            IndexError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        // The frame layer reports checksum mismatches as InvalidData and
        // truncation as UnexpectedEof; both are index corruption, not
        // environment trouble like a missing file or permission error.
        match e.kind() {
            std::io::ErrorKind::InvalidData => IndexError::Corrupt(e.to_string()),
            std::io::ErrorKind::UnexpectedEof => IndexError::Corrupt(format!("truncated: {e}")),
            _ => IndexError::Io(e),
        }
    }
}

impl From<DecodeError> for IndexError {
    fn from(e: DecodeError) -> Self {
        IndexError::Decode(e)
    }
}
