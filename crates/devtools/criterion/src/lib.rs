//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace crate
//! implements the subset of criterion's API that the repository's benches
//! use — `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`black_box`], benchmark groups with [`Throughput`], and `Bencher::iter`
//! — with a simple calibrated wall-clock measurement loop.
//!
//! Output is one line per benchmark: mean time per iteration and, when a
//! throughput was declared, derived elements/s or bytes/s.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration workload, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The measurement driver passed to `bench_function` closures.
pub struct Bencher {
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    target_time: Duration,
}

impl Bencher {
    /// Calibrates an iteration count against the target time, measures, and
    /// records the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that fills the
        // target measurement window.
        let mut iters: u64 = 1;
        let calibration = self.target_time / 10;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration || iters >= u64::MAX / 2 {
                let per_iter = elapsed.as_nanos().max(1) / iters as u128;
                let measured = (self.target_time.as_nanos() / per_iter).max(1);
                iters = measured.min(u64::MAX as u128) as u64;
                break;
            }
            iters *= 2;
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters.max(1) as u32;
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.target_time, name, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion.target_time, &full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    target_time: Duration,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        target_time,
    };
    f(&mut b);
    let nanos = b.mean.as_nanos().max(1);
    let mut line = format!("{name:<40} {:>12}/iter", format_nanos(nanos));
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = amount as f64 * 1e9 / nanos as f64;
        line.push_str(&format!("  {:>14}/s", format_quantity(per_sec, unit)));
    }
    println!("{line}");
}

fn format_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn format_quantity(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.2} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K{unit}", v / 1e3)
    } else {
        format!("{v:.2} {unit}")
    }
}

/// Collects benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..10u64).map(black_box).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn formatting_scales_units() {
        assert!(format_nanos(12).ends_with("ns"));
        assert!(format_nanos(12_000).contains("µs"));
        assert!(format_quantity(2.5e6, "B").contains("MB"));
    }
}
