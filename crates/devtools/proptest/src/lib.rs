//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace crate provides the subset of proptest's API that the
//! repository's property tests use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, `any::<T>()`, ranges, tuples, `Just`,
//! `prop::collection::vec`, `prop::option::weighted`, [`prop_oneof!`], and
//! the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. Failing cases panic with the assertion message and the case
//! seed, which is deterministic per test name, so failures reproduce exactly
//! on re-run.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic xorshift* RNG seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG deterministically from an arbitrary string (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values — proptest's core abstraction, minus
/// shrinking. Object-safe so strategies can be boxed for [`prop_oneof!`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered by below()")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>` that is `Some` with probability `prob`.
    pub struct WeightedOption<S> {
        prob: f64,
        inner: S,
    }

    /// `Some(value)` with probability `prob`, else `None`.
    pub fn weighted<S: Strategy>(prob: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { prob, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.prob {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespaced strategy modules, mirroring proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface the repository uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comments are allowed.
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_picks_only_arms(x in prop_oneof![3 => 0u32..2, 1 => Just(9u32)]) {
            prop_assert!(x < 2 || x == 9, "unexpected {x}");
        }
    }
}
