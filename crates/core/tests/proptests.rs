//! Property tests for lash-core's algorithmic kernels: matching against a
//! brute-force oracle, local-miner equivalence on random partitions, DAG
//! mining against exhaustive enumeration, and the closed/maximal
//! window-index against the quadratic reference.

use lash_core::dag::{naive_dag, DagMiner, MultiVocabularyBuilder};
use lash_core::hierarchy::ItemSpace;
use lash_core::matching::matches;
use lash_core::miner::{BfsMiner, DfsMiner, LocalMiner, NaiveMiner, PsmMiner};
use lash_core::sequence::{Partition, SequenceDatabase, WeightedSequence};
use lash_core::stats::{closed_maximal_counts, closed_maximal_counts_naive};
use lash_core::{GsmParams, Lash, LashConfig, VocabularyBuilder, BLANK};
use proptest::prelude::*;

/// A random rank-space hierarchy: parent of rank `r` is a smaller rank or
/// none; frequencies are non-increasing by construction.
fn arb_space(max_items: usize) -> impl Strategy<Value = ItemSpace> {
    prop::collection::vec(prop::option::weighted(0.5, 0..100usize), 1..max_items).prop_map(
        |parents| {
            let n = parents.len();
            let parent: Vec<Option<u32>> = parents
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    if i == 0 {
                        None
                    } else {
                        p.map(|v| (v % i) as u32)
                    }
                })
                .collect();
            let frequency: Vec<u64> = (0..n as u64).map(|i| 1000 - i).collect();
            let num_frequent = (n as u32).div_ceil(2);
            ItemSpace::new(parent, frequency, num_frequent)
        },
    )
}

/// A random rank-space sequence that may contain blanks.
fn arb_seq(n_items: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(prop_oneof![9 => 0..n_items as u32, 1 => Just(BLANK)], 0..10)
}

/// Brute-force `S ⊑γ T`: try every embedding recursively.
fn oracle_matches(pattern: &[u32], seq: &[u32], space: &ItemSpace, gamma: usize) -> bool {
    fn rec(pattern: &[u32], seq: &[u32], space: &ItemSpace, gamma: usize, from: usize) -> bool {
        if pattern.is_empty() {
            return true;
        }
        let to = if from == 0 {
            seq.len()
        } else {
            (from + gamma + 1).min(seq.len())
        };
        for q in from..to {
            let t = seq[q];
            if t != BLANK
                && space.generalizes_to(t, pattern[0])
                && rec(&pattern[1..], seq, space, gamma, q + 1)
            {
                return true;
            }
        }
        false
    }
    if pattern.len() > seq.len() {
        return false;
    }
    rec(pattern, seq, space, gamma, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matching_agrees_with_brute_force(
        space in arb_space(8),
        seq in arb_seq(8),
        pattern in prop::collection::vec(0u32..8, 1..4),
        gamma in 0usize..3,
    ) {
        let n = space.len() as u32;
        let pattern: Vec<u32> = pattern.into_iter().map(|p| p % n).collect();
        let seq: Vec<u32> = seq.into_iter().map(|t| if t == BLANK { BLANK } else { t % n }).collect();
        prop_assert_eq!(
            matches(&pattern, &seq, &space, gamma),
            oracle_matches(&pattern, &seq, &space, gamma),
            "pattern {:?} seq {:?} γ={}", pattern, seq, gamma
        );
    }

    /// All local miners agree with exhaustive enumeration on random
    /// partitions (weighted, blank-containing sequences included).
    #[test]
    fn local_miners_agree_on_random_partitions(
        space in arb_space(8),
        seqs in prop::collection::vec((arb_seq(8), 1u64..3), 1..8),
        sigma in 1u64..4,
        gamma in 0usize..3,
        lambda in 2usize..5,
    ) {
        let n = space.len() as u32;
        let partition = Partition {
            sequences: seqs
                .into_iter()
                .map(|(s, w)| {
                    let items: Vec<u32> =
                        s.into_iter().map(|t| if t == BLANK { BLANK } else { t % n }).collect();
                    WeightedSequence::new(items, w)
                })
                .collect(),
        };
        let params = GsmParams::new(sigma, gamma, lambda).unwrap();
        for pivot in 0..space.num_frequent() {
            let (expected, _) = NaiveMiner.mine(&partition, pivot, &space, &params);
            for miner in [
                &BfsMiner as &dyn LocalMiner,
                &DfsMiner,
                &PsmMiner::plain(),
                &PsmMiner::indexed(),
            ] {
                let (got, _) = miner.mine(&partition, pivot, &space, &params);
                prop_assert_eq!(
                    &expected,
                    &got,
                    "miner {} pivot {} diff {:?}",
                    miner.name(),
                    pivot,
                    expected.diff(&got)
                );
            }
        }
    }

    /// DAG mining agrees with exhaustive enumeration on random DAGs.
    #[test]
    fn dag_miner_agrees_with_enumeration(
        edges in prop::collection::vec((1usize..8, 0usize..8), 0..12),
        raw in prop::collection::vec(prop::collection::vec(0u32..8, 1..6), 1..6),
        sigma in 1u64..3,
        gamma in 0usize..2,
        lambda in 2usize..4,
    ) {
        let mut vb = MultiVocabularyBuilder::new();
        let items: Vec<_> = (0..8).map(|i| vb.intern(&format!("n{i}"))).collect();
        for (child, parent) in edges {
            // Parent index smaller than child guarantees acyclicity.
            let p = parent % child;
            let _ = vb.add_parent(items[child], items[p]);
        }
        let vocab = vb.finish();
        let mut db = SequenceDatabase::new();
        for seq in &raw {
            let s: Vec<_> = seq.iter().map(|&i| items[i as usize % 8]).collect();
            db.push(&s);
        }
        let params = GsmParams::new(sigma, gamma, lambda).unwrap();
        let (_, expected) = naive_dag(&db, &vocab, &params);
        let (_, got) = DagMiner.mine(&db, &vocab, &params);
        prop_assert_eq!(&expected, &got, "diff {:?}", expected.diff(&got));
    }

    /// The window-index closed/maximal computation matches the quadratic
    /// reference on complete outputs of random mining runs.
    #[test]
    fn closed_maximal_fast_equals_naive(
        parents in prop::collection::vec(prop::option::weighted(0.5, 0..100usize), 2..8),
        raw in prop::collection::vec(prop::collection::vec(0u32..8, 0..6), 1..8),
        gamma in 0usize..2,
        lambda in 2usize..4,
    ) {
        let mut vb = VocabularyBuilder::new();
        let items: Vec<_> = (0..parents.len())
            .map(|i| vb.intern(&format!("x{i}")))
            .collect();
        for (i, p) in parents.iter().enumerate() {
            if i > 0 {
                if let Some(p) = p {
                    vb.set_parent(items[i], items[p % i]).unwrap();
                }
            }
        }
        let vocab = vb.finish().unwrap();
        let mut db = SequenceDatabase::new();
        for seq in &raw {
            let s: Vec<_> = seq.iter().map(|&i| items[i as usize % items.len()]).collect();
            db.push(&s);
        }
        let params = GsmParams::new(1, gamma, lambda).unwrap();
        let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params).unwrap();
        let space = result.context().space();
        prop_assert_eq!(
            closed_maximal_counts(result.pattern_set(), space),
            closed_maximal_counts_naive(result.pattern_set(), space)
        );
    }
}
