//! Integration test for the acceptance criterion of the out-of-core
//! shuffle: a mine job run with a small `spill_threshold_bytes` produces
//! byte-identical frequent patterns to the in-memory path, with the
//! counters reporting nonzero spilled bytes and merged runs.

use lash_core::context::MiningContext;
use lash_core::distributed::naive_job::run_naive;
use lash_core::{GsmParams, Lash, LashConfig, SequenceDatabase, Vocabulary, VocabularyBuilder};
use lash_mapreduce::EngineConfig;

/// A small product-session corpus with a two-level hierarchy, sized so the
/// mine job's shuffle carries a few kilobytes.
fn corpus() -> (Vocabulary, SequenceDatabase) {
    let mut vb = VocabularyBuilder::new();
    let electronics = vb.intern("electronics");
    let media = vb.intern("media");
    let cameras: Vec<_> = (0..4)
        .map(|i| vb.child(&format!("camera{i}"), electronics))
        .collect();
    let phones: Vec<_> = (0..4)
        .map(|i| vb.child(&format!("phone{i}"), electronics))
        .collect();
    let books: Vec<_> = (0..6)
        .map(|i| vb.child(&format!("book{i}"), media))
        .collect();
    let vocab = vb.finish().unwrap();

    let mut db = SequenceDatabase::new();
    // Deterministic pseudo-random sessions mixing the three families.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..120 {
        let len = 3 + (next() % 5) as usize;
        let mut seq = Vec::with_capacity(len);
        for _ in 0..len {
            let pick = next() as usize;
            seq.push(match pick % 3 {
                0 => cameras[pick % cameras.len()],
                1 => phones[pick % phones.len()],
                _ => books[pick % books.len()],
            });
        }
        db.push(&seq);
    }
    (vocab, db)
}

fn config(threshold: Option<usize>) -> LashConfig {
    LashConfig::new(
        EngineConfig::default()
            .with_split_size(8)
            .with_reduce_tasks(4)
            .with_spill_threshold(threshold),
    )
}

#[test]
fn spilled_mine_job_is_byte_identical_to_in_memory() {
    let (vocab, db) = corpus();
    let params = GsmParams::new(4, 1, 4).unwrap();

    let in_memory = Lash::new(config(None)).mine(&db, &vocab, &params).unwrap();
    assert_eq!(in_memory.mine_metrics.counters.spilled_bytes, 0);
    assert!(
        !in_memory.pattern_set().is_empty(),
        "test corpus must actually produce patterns"
    );

    // A threshold far below the shuffle volume forces real spills.
    let spilled = Lash::new(config(Some(256)))
        .mine(&db, &vocab, &params)
        .unwrap();
    assert_eq!(
        spilled.pattern_set(),
        in_memory.pattern_set(),
        "diff: {:?}",
        spilled.pattern_set().diff(in_memory.pattern_set())
    );
    assert_eq!(spilled.patterns(), in_memory.patterns());

    let c = &spilled.mine_metrics.counters;
    assert!(c.spilled_bytes > 0, "no bytes spilled: {c:?}");
    assert!(c.spilled_runs > 0);
    assert!(c.merged_runs > 0);
    assert!(c.peak_resident_bytes > 0);
}

#[test]
fn spilled_sharded_mine_job_matches_too() {
    let (vocab, db) = corpus();
    let params = GsmParams::new(4, 1, 4).unwrap();
    let reference = Lash::new(config(None)).mine(&db, &vocab, &params).unwrap();
    let spilled = Lash::new(config(Some(128)))
        .mine_sharded(&db, &vocab, &params, None)
        .unwrap();
    assert_eq!(spilled.pattern_set(), reference.pattern_set());
    assert!(spilled.mine_metrics.counters.spilled_bytes > 0);
}

#[test]
fn spilled_baselines_agree_with_lash() {
    let (vocab, db) = corpus();
    let params = GsmParams::new(4, 1, 3).unwrap();
    let lash = Lash::new(config(Some(64)))
        .mine(&db, &vocab, &params)
        .unwrap();
    let ctx = MiningContext::build(&db, &vocab, params.sigma);
    let cluster = EngineConfig::default()
        .with_split_size(8)
        .with_reduce_tasks(4)
        .with_spill_threshold(Some(64));
    let (naive, metrics) = run_naive(&ctx, &params, &cluster).unwrap();
    assert_eq!(lash.pattern_set(), &naive);
    assert!(metrics.counters.spilled_bytes > 0);
}
