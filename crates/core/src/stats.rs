//! Output statistics: non-trivial, closed, and maximal generalized sequences
//! (paper Sec. 6.7, Table 3).
//!
//! * A mined sequence is **trivial** if it can be produced by mining without
//!   the hierarchy and then generalizing items — i.e. some flat-frequent
//!   sequence of the same length specializes it position-wise. Non-trivial
//!   sequences are the value added by GSM.
//! * `S'` is a **supersequence** of `S` (written `S' ⊐0 S`) when `S ⊑0 S'`
//!   and `S ≠ S'`: `S` embeds into `S'` contiguously, allowing positions of
//!   `S'` to be more specific. A frequent `S` is **maximal** if no frequent
//!   supersequence exists, and **closed** if every frequent supersequence has
//!   a different (lower) frequency.
//!
//! Closedness/maximality are evaluated within the mined output (patterns are
//! length-bounded by λ, so supersequences beyond λ are out of scope by
//! definition of the mining task).

use crate::hierarchy::ItemSpace;
use crate::pattern::PatternSet;
use crate::vocabulary::{ItemId, Vocabulary};

/// Table 3-style summary of one output set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputStats {
    /// Number of mined sequences.
    pub total: usize,
    /// Percentage that no flat-mining run could produce (with generalization).
    pub non_trivial_pct: f64,
    /// Percentage of closed sequences.
    pub closed_pct: f64,
    /// Percentage of maximal sequences.
    pub maximal_pct: f64,
}

/// True if `sub ⊑0 sup` with `γ = 0`: `sub` matches a contiguous window of
/// `sup`, each `sup` item generalizing to the `sub` item.
pub fn is_contiguous_generalization(sub: &[u32], sup: &[u32], space: &ItemSpace) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    'offsets: for offset in 0..=sup.len() - sub.len() {
        for (i, &s) in sub.iter().enumerate() {
            if !space.generalizes_to(sup[offset + i], s) {
                continue 'offsets;
            }
        }
        return true;
    }
    false
}

/// Counts closed and maximal patterns within `patterns`.
///
/// Returns `(closed, maximal)`.
///
/// Uses a window-index reduction that makes the check near-linear in the
/// output size. It relies on the following property of the γ = 0
/// supersequence relation **within a frequency-closed output set**: if `S`
/// has a frequent supersequence of *any* length, it has one of length `|S|`
/// or `|S| + 1` in the set — take the length-`|S|` window `W` of the
/// supersequence covering `S`'s embedding (`W` is frequent by monotonicity
/// and therefore in the output); if `W = S`, extend the window by one item.
/// The frequency squeeze `f(S) ≥ f(W) ≥ f(S')` shows the same reduction
/// holds for *equal-frequency* supersequences (closedness).
pub fn closed_maximal_counts(patterns: &PatternSet, space: &ItemSpace) -> (usize, usize) {
    let flags = closed_maximal_flags(patterns, space);
    (
        flags.iter().filter(|f| f.0).count(),
        flags.iter().filter(|f| f.1).count(),
    )
}

/// Restricts a mined output to its closed patterns (no frequent
/// supersequence with equal frequency). The input must be a complete GSM
/// output (see [`closed_maximal_counts`]).
pub fn filter_closed(patterns: &PatternSet, space: &ItemSpace) -> PatternSet {
    let flags = closed_maximal_flags(patterns, space);
    PatternSet::from_pairs(
        patterns
            .iter()
            .zip(flags)
            .filter(|(_, f)| f.0)
            .map(|((p, freq), _)| (p.to_vec(), freq)),
    )
}

/// Restricts a mined output to its maximal patterns (no frequent
/// supersequence at all). The input must be a complete GSM output.
pub fn filter_maximal(patterns: &PatternSet, space: &ItemSpace) -> PatternSet {
    let flags = closed_maximal_flags(patterns, space);
    PatternSet::from_pairs(
        patterns
            .iter()
            .zip(flags)
            .filter(|(_, f)| f.1)
            .map(|((p, freq), _)| (p.to_vec(), freq)),
    )
}

/// Per-pattern (closed, maximal) flags in the iteration order of `patterns`.
fn closed_maximal_flags(patterns: &PatternSet, space: &ItemSpace) -> Vec<(bool, bool)> {
    use crate::fxhash::FxHashMap;
    let all: Vec<(&[u32], u64)> = patterns.iter().collect();
    // The most general form of each pattern: items mapped to their roots.
    // `u →* v` implies equal roots, so only patterns with matching
    // root-vectors (or root-vector windows) can be supersequences.
    let root = |rank: u32| *space.chain(rank).last().expect("non-empty chain");
    let roots: Vec<Vec<u32>> = all
        .iter()
        .map(|(s, _)| s.iter().map(|&r| root(r)).collect())
        .collect();
    // Same-length candidates: group by root-vector.
    let mut same_len: FxHashMap<&[u32], Vec<usize>> = FxHashMap::default();
    for (i, rv) in roots.iter().enumerate() {
        same_len.entry(rv).or_default().push(i);
    }
    // Length-(l+1) candidates: index every l-window of every pattern's
    // root-vector, remembering the offset.
    let mut windows: FxHashMap<&[u32], Vec<(usize, usize)>> = FxHashMap::default();
    for (i, rv) in roots.iter().enumerate() {
        // Patterns have length ≥ 2, so windows of length ≥ 2 suffice.
        if rv.len() >= 3 {
            for offset in 0..=1 {
                windows
                    .entry(&rv[offset..offset + rv.len() - 1])
                    .or_default()
                    .push((i, offset));
            }
        }
    }

    let mut flags = Vec::with_capacity(all.len());
    for (i, &(s, f)) in all.iter().enumerate() {
        let mut is_closed = true;
        let mut is_maximal = true;
        let mut consider = |j: usize, offset: usize| -> bool {
            // Returns true when the search can stop (not closed).
            let (sup, sup_f) = all[j];
            let matches = s
                .iter()
                .enumerate()
                .all(|(k, &sk)| space.generalizes_to(sup[offset + k], sk));
            if matches {
                is_maximal = false;
                if sup_f == f {
                    is_closed = false;
                    return true;
                }
            }
            false
        };
        'done: {
            if let Some(group) = same_len.get(roots[i].as_slice()) {
                for &j in group {
                    if j != i && consider(j, 0) {
                        break 'done;
                    }
                }
            }
            if let Some(cands) = windows.get(roots[i].as_slice()) {
                for &(j, offset) in cands {
                    if consider(j, offset) {
                        break 'done;
                    }
                }
            }
        }
        flags.push((is_closed, is_maximal));
    }
    flags
}

/// Reference implementation of [`closed_maximal_counts`]: the direct
/// quadratic scan over all pattern pairs. Used by the test suite to validate
/// the window-index reduction; prefer `closed_maximal_counts` for real
/// outputs.
pub fn closed_maximal_counts_naive(patterns: &PatternSet, space: &ItemSpace) -> (usize, usize) {
    let all: Vec<(&[u32], u64)> = patterns.iter().collect();
    let mut closed = 0usize;
    let mut maximal = 0usize;
    for &(s, f) in &all {
        let mut is_closed = true;
        let mut is_maximal = true;
        for &(sup, sup_f) in &all {
            if sup.len() < s.len() || (sup.len() == s.len() && sup == s) {
                continue;
            }
            if is_contiguous_generalization(s, sup, space) {
                is_maximal = false;
                if sup_f == f {
                    is_closed = false;
                    break;
                }
            }
        }
        // `break` on the non-closed path is sound for maximality too — the
        // supersequence that voided closedness already voided maximality.
        closed += is_closed as usize;
        maximal += is_maximal as usize;
    }
    (closed, maximal)
}

/// Counts the GSM output sequences that are *non-trivial* with respect to a
/// flat mining output.
///
/// Both pattern lists must be given in vocabulary space (decode each run's
/// rank patterns with its own order first). A GSM pattern `S` is trivial iff
/// some flat pattern `F` of the same length satisfies `F[i] →* S[i]` for all
/// positions.
pub fn non_trivial_count(gsm: &[Vec<ItemId>], flat: &[Vec<ItemId>], vocab: &Vocabulary) -> usize {
    let mut by_len: crate::fxhash::FxHashMap<usize, Vec<&Vec<ItemId>>> = Default::default();
    for f in flat {
        by_len.entry(f.len()).or_default().push(f);
    }
    gsm.iter()
        .filter(|s| {
            let Some(candidates) = by_len.get(&s.len()) else {
                return true;
            };
            !candidates.iter().any(|f| {
                f.iter()
                    .zip(s.iter())
                    .all(|(&fi, &si)| vocab.generalizes_to(fi, si))
            })
        })
        .count()
}

/// Computes the full Table 3 row for a GSM output, given the matching flat
/// mining output.
pub fn output_stats(
    gsm_patterns: &[Vec<ItemId>],
    gsm_set: &PatternSet,
    flat_patterns: &[Vec<ItemId>],
    space: &ItemSpace,
    vocab: &Vocabulary,
) -> OutputStats {
    let total = gsm_set.len();
    if total == 0 {
        return OutputStats {
            total: 0,
            non_trivial_pct: 0.0,
            closed_pct: 0.0,
            maximal_pct: 0.0,
        };
    }
    let non_trivial = non_trivial_count(gsm_patterns, flat_patterns, vocab);
    let (closed, maximal) = closed_maximal_counts(gsm_set, space);
    let pct = |n: usize| 100.0 * n as f64 / total as f64;
    OutputStats {
        total,
        non_trivial_pct: pct(non_trivial),
        closed_pct: pct(closed),
        maximal_pct: pct(maximal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_context, named_patterns, ranks};

    #[test]
    fn contiguous_generalization_examples() {
        let ctx = fig2_context();
        let space = ctx.space();
        let ab = ranks(&ctx, &["a", "B"]);
        let ab1 = ranks(&ctx, &["a", "b1"]);
        let abc = ranks(&ctx, &["a", "B", "c"]);
        let ab1c = ranks(&ctx, &["a", "b1", "c"]);
        // Same length, specialization: aB ⊑0 ab1 (b1 →* B).
        assert!(is_contiguous_generalization(&ab, &ab1, space));
        assert!(!is_contiguous_generalization(&ab1, &ab, space));
        // Longer supersequence: aB ⊑0 aBc and aB ⊑0 ab1c.
        assert!(is_contiguous_generalization(&ab, &abc, space));
        assert!(is_contiguous_generalization(&ab, &ab1c, space));
        // Interior window: Bc ⊑0 aBc.
        let bc = ranks(&ctx, &["B", "c"]);
        assert!(is_contiguous_generalization(&bc, &abc, space));
        // Gap-0 means contiguous: "ac" does not embed in aBc.
        let ac = ranks(&ctx, &["a", "c"]);
        assert!(!is_contiguous_generalization(&ac, &abc, space));
        // Reflexive.
        assert!(is_contiguous_generalization(&ab, &ab, space));
    }

    #[test]
    fn closed_maximal_on_paper_output() {
        // The Fig. 2 GSM output: aa:2, ab1:2, b1a:2, aB:3, Ba:2, aBc:2, Bc:2,
        // ac:2, b1D:2, BD:2.
        let ctx = fig2_context();
        let set = named_patterns(
            &ctx,
            &[
                ("a a", 2),
                ("a b1", 2),
                ("b1 a", 2),
                ("a B", 3),
                ("B a", 2),
                ("a B c", 2),
                ("B c", 2),
                ("a c", 2),
                ("b1 D", 2),
                ("B D", 2),
            ],
        );
        let (closed, maximal) = closed_maximal_counts(&set, ctx.space());
        // Supersequence analysis (S' ⊐0 S includes same-length
        // specializations):
        //   aB  ⊑0 ab1 (f 2≠3) and ⊑0 aBc (f 2≠3) → closed, not maximal;
        //   Ba  ⊑0 b1a with equal frequency 2     → not closed, not maximal;
        //   Bc  ⊑0 aBc with equal frequency 2     → not closed, not maximal;
        //   BD  ⊑0 b1D with equal frequency 2     → not closed, not maximal;
        //   aa, ab1, b1a, ac, b1D, aBc have no supersequence in the set
        //                                         → closed and maximal.
        // Closed = 10 − |{Ba, Bc, BD}| = 7; maximal = 6.
        assert_eq!(closed, 7);
        assert_eq!(maximal, 6);
    }

    #[test]
    fn non_trivial_on_paper_output() {
        let ctx = fig2_context();
        let vocab = &ctx.vocab;
        let to_items = |names: &[&str]| -> Vec<ItemId> {
            names.iter().map(|n| vocab.lookup(n).unwrap()).collect()
        };
        // Flat mining output on Fig. 1 (σ=2, γ=1, λ=3) is {aa, ac}.
        let flat = vec![to_items(&["a", "a"]), to_items(&["a", "c"])];
        let gsm = vec![
            to_items(&["a", "a"]),      // trivial: equals flat aa
            to_items(&["a", "c"]),      // trivial
            to_items(&["a", "B"]),      // non-trivial (no flat ab* pattern)
            to_items(&["b1", "D"]),     // non-trivial
            to_items(&["a", "B", "c"]), // non-trivial (length 3, no flat)
        ];
        assert_eq!(non_trivial_count(&gsm, &flat, vocab), 3);
    }

    #[test]
    fn output_stats_percentages() {
        let ctx = fig2_context();
        let set = named_patterns(&ctx, &[("a a", 2), ("a B", 3)]);
        let gsm: Vec<Vec<ItemId>> = set.iter().map(|(ranks, _)| ctx.ctx.decode(ranks)).collect();
        let flat = vec![gsm[0].clone()];
        let stats = output_stats(&gsm, &set, &flat, ctx.space(), &ctx.vocab);
        assert_eq!(stats.total, 2);
        // One of two patterns is non-trivial → 50%.
        assert!((stats.non_trivial_pct - 50.0).abs() < 1e-9);
        // Neither is a supersequence of the other → all closed and maximal.
        assert!((stats.closed_pct - 100.0).abs() < 1e-9);
        assert!((stats.maximal_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn filters_partition_the_output() {
        use crate::distributed::lash_job::{Lash, LashConfig};
        use crate::testutil::fig1;
        let (vocab, db) = fig1();
        let params = crate::params::GsmParams::new(2, 1, 3).unwrap();
        let result = Lash::new(LashConfig::default())
            .mine(&db, &vocab, &params)
            .unwrap();
        let space = result.context().space();
        let closed = filter_closed(result.pattern_set(), space);
        let maximal = filter_maximal(result.pattern_set(), space);
        assert_eq!(closed.len(), 7);
        assert_eq!(maximal.len(), 6);
        // Maximal ⊆ closed ⊆ all, frequencies preserved.
        for (p, f) in maximal.iter() {
            assert_eq!(closed.get(p), Some(f));
            assert_eq!(result.pattern_set().get(p), Some(f));
        }
        for (p, f) in closed.iter() {
            assert_eq!(result.pattern_set().get(p), Some(f));
        }
    }

    #[test]
    fn window_index_matches_naive_scan_on_complete_outputs() {
        // The fast algorithm's reduction requires a frequency-complete output
        // set; mine the running example under many parameters and compare
        // against the quadratic reference.
        use crate::distributed::lash_job::{Lash, LashConfig};
        use crate::testutil::fig1;
        let (vocab, db) = fig1();
        for sigma in [1, 2, 3] {
            for gamma in 0..3 {
                for lambda in 2..5 {
                    let params = crate::params::GsmParams::new(sigma, gamma, lambda).unwrap();
                    let result = Lash::new(LashConfig::default())
                        .mine(&db, &vocab, &params)
                        .unwrap();
                    let space = result.context().space();
                    let fast = closed_maximal_counts(result.pattern_set(), space);
                    let naive = closed_maximal_counts_naive(result.pattern_set(), space);
                    assert_eq!(fast, naive, "σ={sigma} γ={gamma} λ={lambda}");
                }
            }
        }
    }

    #[test]
    fn empty_output_stats() {
        let ctx = fig2_context();
        let stats = output_stats(&[], &PatternSet::new(), &[], ctx.space(), &ctx.vocab);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.closed_pct, 0.0);
    }
}
