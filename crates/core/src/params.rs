//! The GSM parameter triple `(σ, γ, λ)`.

use crate::error::{Error, Result};

/// Parameters of a generalized sequence mining run (paper Sec. 2):
///
/// * `sigma` (σ ≥ 1) — minimum support threshold;
/// * `gamma` (γ ≥ 0) — maximum number of gap items between consecutive
///   matched positions;
/// * `lambda` (λ ≥ 2) — maximum pattern length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GsmParams {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Maximum gap γ.
    pub gamma: usize,
    /// Maximum pattern length λ.
    pub lambda: usize,
}

impl GsmParams {
    /// Creates a validated parameter set.
    pub fn new(sigma: u64, gamma: usize, lambda: usize) -> Result<Self> {
        if sigma == 0 {
            return Err(Error::InvalidParams("σ must be at least 1"));
        }
        if lambda < 2 {
            return Err(Error::InvalidParams("λ must be at least 2"));
        }
        Ok(GsmParams {
            sigma,
            gamma,
            lambda,
        })
    }

    /// Convenience constructor for n-gram mining (γ = 0).
    pub fn ngram(sigma: u64, lambda: usize) -> Result<Self> {
        Self::new(sigma, 0, lambda)
    }

    /// Returns a copy with a different support threshold.
    pub fn with_sigma(self, sigma: u64) -> Self {
        GsmParams { sigma, ..self }
    }

    /// Returns a copy with a different gap constraint.
    pub fn with_gamma(self, gamma: usize) -> Self {
        GsmParams { gamma, ..self }
    }

    /// Returns a copy with a different length constraint.
    pub fn with_lambda(self, lambda: usize) -> Self {
        GsmParams { lambda, ..self }
    }
}

impl std::fmt::Display for GsmParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(σ={}, γ={}, λ={})", self.sigma, self.gamma, self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_sigma_and_lambda() {
        assert!(GsmParams::new(0, 0, 3).is_err());
        assert!(GsmParams::new(1, 0, 1).is_err());
        assert!(GsmParams::new(1, 0, 2).is_ok());
    }

    #[test]
    fn ngram_sets_zero_gap() {
        let p = GsmParams::ngram(100, 5).unwrap();
        assert_eq!(p.gamma, 0);
        assert_eq!(p.sigma, 100);
        assert_eq!(p.lambda, 5);
    }

    #[test]
    fn with_methods_adjust_single_fields() {
        let p = GsmParams::new(10, 1, 5).unwrap();
        assert_eq!(p.with_sigma(20).sigma, 20);
        assert_eq!(p.with_gamma(3).gamma, 3);
        assert_eq!(p.with_lambda(7).lambda, 7);
        // Original untouched (Copy semantics).
        assert_eq!(p.sigma, 10);
    }

    #[test]
    fn display_is_human_readable() {
        let p = GsmParams::new(100, 1, 5).unwrap();
        assert_eq!(p.to_string(), "(σ=100, γ=1, λ=5)");
    }
}
