//! The hierarchy in *rank space*.
//!
//! After the preprocessing phase, LASH re-encodes items by their position in
//! the hierarchy-aware total order `<` (paper Sec. 3.4): rank 0 is the most
//! frequent item, ranks increase with decreasing generalized frequency, and
//! ties are broken so that an item's parent always has a *smaller* rank
//! (`w2 → w1` implies `w1 < w2`). Frequent items occupy ranks
//! `0..num_frequent`. The blank symbol is [`crate::BLANK`] (`u32::MAX`),
//! larger than every rank.
//!
//! [`ItemSpace`] is the rank-space view of the vocabulary used by all matchers,
//! rewriters, and miners.

use crate::BLANK;

const NO_PARENT: u32 = u32::MAX;

/// The hierarchy re-encoded into frequency ranks (see module docs).
#[derive(Debug, Clone)]
pub struct ItemSpace {
    parent: Vec<u32>,
    depth: Vec<u32>,
    /// Flattened ancestor chains: `chains[offsets[r]..offsets[r+1]]` is
    /// `[r, parent(r), …, root]` with strictly decreasing ranks after `r`.
    chains: Vec<u32>,
    chain_offsets: Vec<u32>,
    /// Generalized document frequency per rank (descending).
    frequency: Vec<u64>,
    /// Ranks `0..num_frequent` are frequent (`f0 ≥ σ`).
    num_frequent: u32,
}

impl ItemSpace {
    /// Builds an item space from per-rank parents (must satisfy
    /// `parent(r) < r`), per-rank generalized frequencies (must be
    /// non-increasing), and the number of frequent ranks.
    ///
    /// # Panics
    ///
    /// Panics if a parent rank is not smaller than its child (the total order
    /// must be hierarchy-aware) or if frequencies increase with rank.
    pub fn new(parent: Vec<Option<u32>>, frequency: Vec<u64>, num_frequent: u32) -> Self {
        assert_eq!(parent.len(), frequency.len());
        let n = parent.len();
        assert!(num_frequent as usize <= n);
        let parent: Vec<u32> = parent
            .into_iter()
            .enumerate()
            .map(|(i, p)| match p {
                Some(p) => {
                    assert!(
                        (p as usize) < i,
                        "parent rank {p} must be smaller than child rank {i}"
                    );
                    p
                }
                None => NO_PARENT,
            })
            .collect();
        for w in 1..n {
            assert!(
                frequency[w - 1] >= frequency[w],
                "frequencies must be non-increasing in rank (rank {w})"
            );
        }
        let mut depth = vec![0u32; n];
        for i in 0..n {
            if parent[i] != NO_PARENT {
                depth[i] = depth[parent[i] as usize] + 1;
            }
        }
        let mut chains = Vec::new();
        let mut chain_offsets = Vec::with_capacity(n + 1);
        chain_offsets.push(0u32);
        for i in 0..n {
            let mut cursor = i as u32;
            loop {
                chains.push(cursor);
                let p = parent[cursor as usize];
                if p == NO_PARENT {
                    break;
                }
                cursor = p;
            }
            chain_offsets.push(chains.len() as u32);
        }
        ItemSpace {
            parent,
            depth,
            chains,
            chain_offsets,
            frequency,
            num_frequent,
        }
    }

    /// A flat (hierarchy-free) item space over `n` ranks with the given
    /// frequencies. Used for mining without hierarchies (MG-FSM mode).
    pub fn flat(frequency: Vec<u64>, num_frequent: u32) -> Self {
        let n = frequency.len();
        Self::new(vec![None; n], frequency, num_frequent)
    }

    /// Number of ranks (vocabulary size).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the space has no items.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of frequent ranks; partitions exist exactly for ranks
    /// `0..num_frequent`.
    #[inline]
    pub fn num_frequent(&self) -> u32 {
        self.num_frequent
    }

    /// True if `rank` is a frequent item.
    #[inline]
    pub fn is_frequent(&self, rank: u32) -> bool {
        rank < self.num_frequent
    }

    /// Generalized document frequency of `rank`.
    #[inline]
    pub fn frequency(&self, rank: u32) -> u64 {
        self.frequency[rank as usize]
    }

    /// Parent rank, or `None` for roots.
    #[inline]
    pub fn parent(&self, rank: u32) -> Option<u32> {
        let p = self.parent[rank as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// Hierarchy depth of `rank` (roots are 0).
    #[inline]
    pub fn depth(&self, rank: u32) -> u32 {
        self.depth[rank as usize]
    }

    /// Maximum depth over all items (the paper's δ).
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Ancestor chain `[rank, parent, …, root]`; ranks strictly decrease
    /// after the first element.
    #[inline]
    pub fn chain(&self, rank: u32) -> &[u32] {
        let lo = self.chain_offsets[rank as usize] as usize;
        let hi = self.chain_offsets[rank as usize + 1] as usize;
        &self.chains[lo..hi]
    }

    /// True if `u →* v`: `v` is `u` or an ancestor of `u`. Blanks generalize
    /// to nothing and nothing generalizes to a blank.
    #[inline]
    pub fn generalizes_to(&self, u: u32, v: u32) -> bool {
        if u == BLANK || v == BLANK {
            return false;
        }
        if v > u {
            // Ancestors always have smaller ranks.
            return false;
        }
        let mut cursor = u;
        loop {
            if cursor == v {
                return true;
            }
            let p = self.parent[cursor as usize];
            if p == NO_PARENT || p < v {
                return false;
            }
            cursor = p;
        }
    }

    /// The closest frequent ancestor-or-self of `rank` (used by the
    /// semi-naive baseline), or `None` if no ancestor is frequent.
    #[inline]
    pub fn closest_frequent(&self, rank: u32) -> Option<u32> {
        self.chain(rank)
            .iter()
            .copied()
            .find(|&a| self.is_frequent(a))
    }

    /// The most specific ancestor-or-self of `rank` that is *w-relevant* for
    /// `pivot`, i.e. has rank ≤ `pivot` (paper Sec. 4.2), or `None`.
    ///
    /// Because chains have strictly decreasing ranks, this is the first chain
    /// element ≤ `pivot` — the "largest such ancestor" of the paper.
    #[inline]
    pub fn largest_relevant(&self, rank: u32, pivot: u32) -> Option<u32> {
        if rank <= pivot {
            return Some(rank);
        }
        self.chain(rank)[1..].iter().copied().find(|&a| a <= pivot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 rank space for σ=2: a=0, B=1, b1=2, c=3, D=4, then the
    /// infrequent items e=5, f=6, b2=7, b3=8, b11=9, b12=10, b13=11, d1=12,
    /// d2=13 (frequency 1 each, arbitrary order but parents before children).
    pub(crate) fn fig2_space() -> ItemSpace {
        let parent = vec![
            None,    // 0 a
            None,    // 1 B
            Some(1), // 2 b1 -> B
            None,    // 3 c
            None,    // 4 D
            None,    // 5 e
            None,    // 6 f
            Some(1), // 7 b2 -> B
            Some(1), // 8 b3 -> B
            Some(2), // 9 b11 -> b1
            Some(2), // 10 b12 -> b1
            Some(2), // 11 b13 -> b1
            Some(4), // 12 d1 -> D
            Some(4), // 13 d2 -> D
        ];
        let frequency = vec![5, 5, 4, 3, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        ItemSpace::new(parent, frequency, 5)
    }

    #[test]
    fn fig2_space_basic_properties() {
        let s = fig2_space();
        assert_eq!(s.len(), 14);
        assert_eq!(s.num_frequent(), 5);
        assert!(s.is_frequent(4));
        assert!(!s.is_frequent(5));
        assert_eq!(s.depth(9), 2); // b11
        assert_eq!(s.depth(2), 1); // b1
        assert_eq!(s.depth(0), 0); // a
        assert_eq!(s.max_depth(), 2);
        assert_eq!(s.chain(9), &[9, 2, 1]); // b11, b1, B
        assert_eq!(s.chain(0), &[0]);
    }

    #[test]
    fn generalizes_to_in_rank_space() {
        let s = fig2_space();
        assert!(s.generalizes_to(9, 2)); // b11 →* b1
        assert!(s.generalizes_to(9, 1)); // b11 →* B
        assert!(s.generalizes_to(9, 9)); // reflexive
        assert!(!s.generalizes_to(1, 9)); // not downward
        assert!(!s.generalizes_to(8, 2)); // b3 !→* b1
        assert!(!s.generalizes_to(BLANK, 0));
        assert!(!s.generalizes_to(0, BLANK));
    }

    #[test]
    fn closest_frequent_finds_first_frequent_ancestor() {
        let s = fig2_space();
        assert_eq!(s.closest_frequent(9), Some(2)); // b11 → b1 (frequent)
        assert_eq!(s.closest_frequent(8), Some(1)); // b3 → B
        assert_eq!(s.closest_frequent(5), None); // e has no frequent ancestor
        assert_eq!(s.closest_frequent(0), Some(0)); // a is itself frequent
        assert_eq!(s.closest_frequent(12), Some(4)); // d1 → D
    }

    #[test]
    fn largest_relevant_matches_paper_examples() {
        let s = fig2_space();
        // Pivot B (rank 1): b3 (rank 8) generalizes to B (rank 1 ≤ 1).
        assert_eq!(s.largest_relevant(8, 1), Some(1));
        // Pivot B: b12 (rank 10) has ancestors b1 (2) and B (1); only B ≤ 1.
        assert_eq!(s.largest_relevant(10, 1), Some(1));
        // Pivot b1 (rank 2): b12 → b1 (the largest ancestor ≤ 2).
        assert_eq!(s.largest_relevant(10, 2), Some(2));
        // Pivot B: c (rank 3) has no ancestor ≤ 1.
        assert_eq!(s.largest_relevant(3, 1), None);
        // Relevant items map to themselves.
        assert_eq!(s.largest_relevant(0, 1), Some(0));
        // Pivot D (rank 4): d1 (12) → D.
        assert_eq!(s.largest_relevant(12, 4), Some(4));
    }

    #[test]
    #[should_panic(expected = "parent rank")]
    fn rejects_parent_with_larger_rank() {
        ItemSpace::new(vec![Some(1), None], vec![5, 5], 2);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_increasing_frequencies() {
        ItemSpace::new(vec![None, None], vec![3, 5], 2);
    }

    #[test]
    fn flat_space_has_no_generalization() {
        let s = ItemSpace::flat(vec![5, 4, 3], 3);
        assert!(s.generalizes_to(1, 1));
        assert!(!s.generalizes_to(1, 0));
        assert_eq!(s.closest_frequent(2), Some(2));
        assert_eq!(s.largest_relevant(2, 1), None);
        assert_eq!(s.max_depth(), 0);
    }
}
