//! Sequence database storage.
//!
//! Sequences are stored in a flattened arena (one contiguous item buffer plus
//! offsets) to keep per-sequence overhead at two words and iteration
//! cache-friendly — the databases the paper targets have tens of millions of
//! short sequences.

use crate::vocabulary::ItemId;

/// A multiset of input sequences over a vocabulary.
///
/// ```
/// use lash_core::{SequenceDatabase, VocabularyBuilder};
/// let mut vb = VocabularyBuilder::new();
/// let a = vb.intern("a");
/// let b = vb.intern("b");
/// let mut db = SequenceDatabase::new();
/// db.push(&[a, b, a]);
/// db.push(&[b]);
/// assert_eq!(db.len(), 2);
/// assert_eq!(db.get(0), &[a, b, a]);
/// assert_eq!(db.total_items(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SequenceDatabase {
    items: Vec<ItemId>,
    offsets: Vec<u64>,
}

impl SequenceDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        SequenceDatabase {
            items: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty database with reserved capacity.
    pub fn with_capacity(sequences: usize, total_items: usize) -> Self {
        let mut offsets = Vec::with_capacity(sequences + 1);
        offsets.push(0);
        SequenceDatabase {
            items: Vec::with_capacity(total_items),
            offsets,
        }
    }

    /// Appends a sequence; returns its index.
    pub fn push(&mut self, sequence: &[ItemId]) -> usize {
        self.items.extend_from_slice(sequence);
        self.offsets.push(self.items.len() as u64);
        self.offsets.len() - 2
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th sequence.
    pub fn get(&self, idx: usize) -> &[ItemId] {
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.items[lo..hi]
    }

    /// Iterates over all sequences.
    pub fn iter(&self) -> impl Iterator<Item = &[ItemId]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total number of items across all sequences.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Average sequence length.
    pub fn avg_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.items.len() as f64 / self.len() as f64
        }
    }

    /// Maximum sequence length.
    pub fn max_len(&self) -> usize {
        (0..self.len())
            .map(|i| self.get(i).len())
            .max()
            .unwrap_or(0)
    }

    /// Number of distinct items that occur in the database.
    pub fn unique_items(&self) -> usize {
        let mut seen = crate::fxhash::FxHashSet::default();
        for &it in &self.items {
            seen.insert(it);
        }
        seen.len()
    }

    /// Restricts the database to its first `n` sequences (used by the data
    /// scaling experiments of Fig. 6).
    pub fn truncated(&self, n: usize) -> SequenceDatabase {
        let n = n.min(self.len());
        let mut db = SequenceDatabase::with_capacity(n, self.offsets[n] as usize);
        for i in 0..n {
            db.push(self.get(i));
        }
        db
    }
}

/// A corpus whose sequences are grouped into independently scannable shards.
///
/// This is the abstraction that lets the distributed jobs accept *either* an
/// in-memory [`SequenceDatabase`] (one shard) *or* an on-disk corpus opened
/// by `lash-store` (one shard per segment file) as their input: map tasks
/// take a shard index and stream that shard's sequences, so a multi-shard
/// corpus is scanned by several map tasks in parallel without ever being
/// materialized in memory as a whole.
pub trait ShardedCorpus: Sync {
    /// Number of shards. Map parallelism over the corpus is bounded by this.
    fn num_shards(&self) -> usize;

    /// Total number of sequences across all shards.
    fn num_sequences(&self) -> u64;

    /// Scans one shard in storage order, invoking `f` with each sequence's
    /// corpus-wide id and items. The slice is only valid for the duration of
    /// the call.
    fn scan_shard(
        &self,
        shard: usize,
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> crate::error::Result<()>;

    /// Like [`ShardedCorpus::scan_shard`], but the corpus **may skip** any
    /// group of sequences it can prove irrelevant: a sequence may be
    /// withheld from `f` when no item of its G1 closure (its items plus all
    /// their ancestors) satisfies `relevant`. Backends with per-block G1
    /// sketches (`lash-store`) use this to skip whole blocks without
    /// decoding them; the default implementation ignores the predicate and
    /// scans everything, which is always correct.
    ///
    /// Callers must therefore only pass predicates whose rejected sequences
    /// genuinely cannot contribute — e.g. the partition-and-mine map phase,
    /// where a sequence without a single frequent item in its closure emits
    /// nothing.
    fn scan_shard_pruned(
        &self,
        shard: usize,
        relevant: &(dyn Fn(ItemId) -> bool + Sync),
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> crate::error::Result<()> {
        let _ = relevant;
        self.scan_shard(shard, f)
    }

    /// The corpus's fixed item order as `item_of`: index `r` holds the raw
    /// `u32` of the item at frequency rank `r`. `Some` only when the corpus
    /// physically fixes such an order (rank-encoded storage); `None`
    /// otherwise. A mine job whose own [`crate::flist::ItemOrder`] equals
    /// this permutation can consume [`ShardedCorpus::scan_shard_ranked`]
    /// and skip its map-phase re-encoding entirely.
    fn rank_order(&self) -> Option<&[u32]> {
        None
    }

    /// Like [`ShardedCorpus::scan_shard_pruned`], but sequences are
    /// delivered in **rank space**: each yielded `ItemId` carries the
    /// item's frequency rank under [`ShardedCorpus::rank_order`], not its
    /// vocabulary id. The `relevant` predicate stays **id-space** (it
    /// drives sketch pruning over stored metadata). Errors when the corpus
    /// has no rank order.
    ///
    /// The default derives the mapping from `rank_order()` and rewrites on
    /// top of the pruned scan; rank-encoded backends override this with a
    /// pass-through of the stored bytes.
    fn scan_shard_ranked(
        &self,
        shard: usize,
        relevant: &(dyn Fn(ItemId) -> bool + Sync),
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> crate::error::Result<()> {
        let Some(item_of) = self.rank_order() else {
            return Err(crate::error::Error::Engine(
                "ranked scan requires a corpus with a fixed rank order".into(),
            ));
        };
        let mut rank_of = vec![0u32; item_of.len()];
        for (rank, &item) in item_of.iter().enumerate() {
            rank_of[item as usize] = rank as u32;
        }
        let mut ranked: Vec<ItemId> = Vec::new();
        self.scan_shard_pruned(shard, relevant, &mut |id, seq| {
            ranked.clear();
            ranked.extend(
                seq.iter()
                    .map(|item| ItemId::from_u32(rank_of[item.index()])),
            );
            f(id, &ranked);
        })
    }
}

impl ShardedCorpus for SequenceDatabase {
    fn num_shards(&self) -> usize {
        1
    }

    fn num_sequences(&self) -> u64 {
        self.len() as u64
    }

    fn scan_shard(
        &self,
        shard: usize,
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> crate::error::Result<()> {
        debug_assert_eq!(shard, 0, "SequenceDatabase is a single shard");
        for (i, seq) in self.iter().enumerate() {
            f(i as u64, seq);
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a SequenceDatabase {
    type Item = &'a [ItemId];
    type IntoIter = Box<dyn Iterator<Item = &'a [ItemId]> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// A sequence in *rank space* together with an aggregation weight, as shipped
/// to and mined inside a partition (paper Sec. 4.4: duplicate rewritten
/// sequences are aggregated and carry a count).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WeightedSequence {
    /// Items as frequency ranks; may contain [`crate::BLANK`].
    pub items: Vec<u32>,
    /// Number of input sequences this rewritten sequence represents.
    pub weight: u64,
}

impl WeightedSequence {
    /// Creates a weighted sequence.
    pub fn new(items: Vec<u32>, weight: u64) -> Self {
        WeightedSequence { items, weight }
    }
}

/// A partition `P_w`: the aggregated, rewritten sequences routed to pivot `w`.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// The aggregated sequences.
    pub sequences: Vec<WeightedSequence>,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Partition::default()
    }

    /// Builds a partition from raw (sequence, weight) pairs, aggregating
    /// duplicates.
    pub fn aggregate(raw: impl IntoIterator<Item = (Vec<u32>, u64)>) -> Self {
        let mut agg: crate::fxhash::FxHashMap<Vec<u32>, u64> = Default::default();
        for (seq, w) in raw {
            *agg.entry(seq).or_insert(0) += w;
        }
        let mut sequences: Vec<WeightedSequence> = agg
            .into_iter()
            .map(|(items, weight)| WeightedSequence { items, weight })
            .collect();
        // Deterministic order regardless of hash iteration.
        sequences.sort_unstable_by(|a, b| a.items.cmp(&b.items));
        Partition { sequences }
    }

    /// Total weight (number of represented input sequences).
    pub fn total_weight(&self) -> u64 {
        self.sequences.iter().map(|s| s.weight).sum()
    }

    /// Number of distinct (aggregated) sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True if the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::VocabularyBuilder;

    fn ids(n: u32) -> Vec<ItemId> {
        let mut vb = VocabularyBuilder::new();
        (0..n).map(|i| vb.intern(&format!("i{i}"))).collect()
    }

    #[test]
    fn push_and_get() {
        let v = ids(5);
        let mut db = SequenceDatabase::new();
        assert_eq!(db.push(&[v[0], v[1]]), 0);
        assert_eq!(db.push(&[v[2]]), 1);
        assert_eq!(db.push(&[]), 2);
        assert_eq!(db.push(&[v[3], v[4], v[0]]), 3);
        assert_eq!(db.len(), 4);
        assert_eq!(db.get(0), &[v[0], v[1]]);
        assert_eq!(db.get(2), &[]);
        assert_eq!(db.get(3), &[v[3], v[4], v[0]]);
        assert_eq!(db.total_items(), 6);
        assert_eq!(db.max_len(), 3);
        assert!((db.avg_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn iter_visits_all_sequences() {
        let v = ids(3);
        let mut db = SequenceDatabase::new();
        db.push(&[v[0]]);
        db.push(&[v[1], v[2]]);
        let collected: Vec<Vec<ItemId>> = db.iter().map(|s| s.to_vec()).collect();
        assert_eq!(collected, vec![vec![v[0]], vec![v[1], v[2]]]);
    }

    #[test]
    fn unique_items_deduplicates() {
        let v = ids(3);
        let mut db = SequenceDatabase::new();
        db.push(&[v[0], v[0], v[1]]);
        db.push(&[v[1]]);
        assert_eq!(db.unique_items(), 2);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let v = ids(4);
        let mut db = SequenceDatabase::new();
        db.push(&[v[0]]);
        db.push(&[v[1], v[2]]);
        db.push(&[v[3]]);
        let t = db.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), &[v[1], v[2]]);
        // Truncating beyond the end is a full copy.
        assert_eq!(db.truncated(10).len(), 3);
    }

    #[test]
    fn partition_aggregation_merges_duplicates() {
        let p = Partition::aggregate(vec![(vec![1, 2], 1), (vec![1, 2], 1), (vec![3], 2)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_weight(), 4);
        let ab = p.sequences.iter().find(|s| s.items == [1, 2]).unwrap();
        assert_eq!(ab.weight, 2);
    }

    #[test]
    fn empty_database_statistics() {
        let db = SequenceDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.avg_len(), 0.0);
        assert_eq!(db.max_len(), 0);
        assert_eq!(db.unique_items(), 0);
    }
}
