//! A small FxHash-style hasher for integer-keyed maps.
//!
//! LASH's hot paths hash item ids, ranks, and short id sequences. The standard
//! SipHash hasher is needlessly slow for these keys; following the Rust
//! performance guide we use the Fx multiply-rotate-xor scheme (as used by
//! rustc). Implemented here directly (~30 lines) rather than pulling in the
//! `rustc-hash` crate.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (multiply + rotate + xor).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut seen = std::collections::HashSet::new();
        for v in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(v);
            seen.insert(h.finish());
        }
        // Fx is not perfect but must have no collisions on small dense ranges.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_basic_usage() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for v in 0..100 {
            *m.entry(v % 10).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 10);
        assert!(m.values().all(|&c| c == 10));
    }

    #[test]
    fn hashes_byte_slices_of_all_lengths() {
        // Like `Hash for [u8]`, mix in the length: the raw stream hash cannot
        // distinguish trailing zeros (same as rustc's FxHasher).
        let bytes: Vec<u8> = (0..=255).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=bytes.len() {
            let mut h = FxHasher::default();
            h.write_usize(len);
            h.write(&bytes[..len]);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 257);
    }
}
