//! w-generalization (paper Sec. 4.2).
//!
//! An item is *w-relevant* if its rank is ≤ the pivot's rank; no generalized
//! subsequence containing a w-irrelevant item can be a pivot sequence (the
//! pivot is, by definition, the largest item of a pivot sequence). Irrelevant
//! items cannot simply be dropped — they occupy gap positions and their
//! ancestors may be relevant — so each one is replaced by:
//!
//! * its most specific ancestor with rank ≤ pivot (the "largest such
//!   ancestor"), if any — note this may be the pivot itself, creating new
//!   pivot occurrences (`b3 → B` in the paper's `T2` example); or
//! * the blank symbol, which matches nothing but preserves gaps.

use crate::hierarchy::ItemSpace;
use crate::BLANK;

/// Returns the w-generalization of `seq` for `pivot`. Blanks map to blanks.
pub fn w_generalize(seq: &[u32], pivot: u32, space: &ItemSpace) -> Vec<u32> {
    seq.iter()
        .map(|&t| {
            if t == BLANK {
                BLANK
            } else {
                space.largest_relevant(t, pivot).unwrap_or(BLANK)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_context, ranks};

    #[test]
    fn t2_generalizes_to_a_b_blank_blank_b() {
        // Paper Sec. 4.2: T2 = a b3 c c b2, pivot B → a B ␣ ␣ B.
        let ctx = fig2_context();
        let seq = ranks(&ctx, &["a", "b3", "c", "c", "b2"]);
        let b = ctx.rank("B");
        let got = w_generalize(&seq, b, ctx.space());
        let a = ctx.rank("a");
        assert_eq!(got, vec![a, b, BLANK, BLANK, b]);
    }

    #[test]
    fn relevant_items_are_untouched() {
        let ctx = fig2_context();
        let seq = ranks(&ctx, &["a", "b1", "c"]);
        // Pivot D (rank 4) — every item is relevant.
        let got = w_generalize(&seq, ctx.rank("D"), ctx.space());
        assert_eq!(got, seq);
    }

    #[test]
    fn picks_most_specific_relevant_ancestor() {
        let ctx = fig2_context();
        // b12's chain is b12 → b1 → B. With pivot b1, the most specific
        // relevant ancestor is b1; with pivot B it is B.
        let seq = ranks(&ctx, &["b12"]);
        assert_eq!(
            w_generalize(&seq, ctx.rank("b1"), ctx.space()),
            ranks(&ctx, &["b1"])
        );
        assert_eq!(
            w_generalize(&seq, ctx.rank("B"), ctx.space()),
            ranks(&ctx, &["B"])
        );
    }

    #[test]
    fn items_without_relevant_ancestor_become_blanks() {
        let ctx = fig2_context();
        let seq = ranks(&ctx, &["e", "f", "d1"]);
        // Pivot a (rank 0): nothing else is relevant.
        let got = w_generalize(&seq, ctx.rank("a"), ctx.space());
        assert_eq!(got, vec![BLANK, BLANK, BLANK]);
    }

    #[test]
    fn blanks_stay_blank() {
        let ctx = fig2_context();
        let a = ctx.rank("a");
        let got = w_generalize(&[BLANK, a], ctx.rank("a"), ctx.space());
        assert_eq!(got, vec![BLANK, a]);
    }

    #[test]
    fn output_items_never_exceed_pivot() {
        let ctx = fig2_context();
        let space = ctx.space();
        for idx in 0..6 {
            let seq = ctx.ranked_seq(idx);
            for pivot in 0..space.num_frequent() {
                for &t in &w_generalize(seq, pivot, space) {
                    assert!(t == BLANK || t <= pivot);
                }
            }
        }
    }
}
