//! Isolated-pivot removal and blank compression (paper Sec. 4.3, final
//! reductions).
//!
//! * A pivot occurrence with no non-blank item within γ+1 positions on either
//!   side cannot contribute to any pivot sequence of length ≥ 2 and is
//!   blanked out.
//! * Leading and trailing blanks are dropped, and interior blank runs longer
//!   than γ+1 are capped at γ+1 — a run of γ+1 blanks already breaks every
//!   gap-constrained match, so longer runs are w-equivalent to it.

use crate::BLANK;

/// Blanks out isolated pivot occurrences in place.
///
/// All occurrences are evaluated against the *original* sequence: two pivots
/// within each other's window keep each other alive (they can form the
/// pattern `ww`).
pub fn remove_isolated_pivots(seq: &mut [u32], pivot: u32, gamma: usize) {
    let n = seq.len();
    let mut isolated = Vec::new();
    for i in 0..n {
        if seq[i] != pivot {
            continue;
        }
        let lo = i.saturating_sub(gamma + 1);
        let hi = (i + gamma + 1).min(n.saturating_sub(1));
        let has_neighbor = (lo..=hi).any(|j| j != i && seq[j] != BLANK);
        if !has_neighbor {
            isolated.push(i);
        }
    }
    for i in isolated {
        seq[i] = BLANK;
    }
}

/// Strips leading/trailing blanks and caps interior blank runs at γ+1.
pub fn cleanup(seq: &mut Vec<u32>, gamma: usize) {
    let cap = gamma + 1;
    let mut w = 0usize;
    let mut run = 0usize;
    for i in 0..seq.len() {
        if seq[i] == BLANK {
            run += 1;
            // Leading blanks (w == 0) and blanks beyond the cap are dropped.
            if w == 0 || run > cap {
                continue;
            }
        } else {
            run = 0;
        }
        seq[w] = seq[i];
        w += 1;
    }
    seq.truncate(w);
    // Trailing blanks.
    while seq.last() == Some(&BLANK) {
        seq.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u32 = BLANK;
    const P: u32 = 4; // pivot used in these tests
    const X: u32 = 1; // some non-pivot item

    #[test]
    fn isolated_pivot_is_blanked() {
        // X ␣ ␣ P with γ=1: P's window is positions 1..=3 — all blank → drop.
        let mut seq = vec![X, B, B, P];
        remove_isolated_pivots(&mut seq, P, 1);
        assert_eq!(seq, vec![X, B, B, B]);
    }

    #[test]
    fn pivot_with_close_neighbor_survives() {
        // X ␣ P with γ=1: X is within distance 2.
        let mut seq = vec![X, B, P];
        remove_isolated_pivots(&mut seq, P, 1);
        assert_eq!(seq, vec![X, B, P]);
        // With γ=0 the window shrinks to ±1 → isolated.
        let mut seq = vec![X, B, P];
        remove_isolated_pivots(&mut seq, P, 0);
        assert_eq!(seq, vec![X, B, B]);
    }

    #[test]
    fn adjacent_pivots_keep_each_other() {
        let mut seq = vec![P, P];
        remove_isolated_pivots(&mut seq, P, 0);
        assert_eq!(seq, vec![P, P]);
        // P ␣ P at γ=0: neither sees a non-blank within ±1 → both go. The
        // decision must use the original sequence, not intermediate state.
        let mut seq = vec![P, B, P];
        remove_isolated_pivots(&mut seq, P, 0);
        assert_eq!(seq, vec![B, B, B]);
        // P ␣ P at γ=1: they see each other.
        let mut seq = vec![P, B, P];
        remove_isolated_pivots(&mut seq, P, 1);
        assert_eq!(seq, vec![P, B, P]);
    }

    #[test]
    fn cleanup_strips_edges_and_caps_runs() {
        // γ=1 → cap 2.
        let mut seq = vec![B, B, X, B, B, B, P, B];
        cleanup(&mut seq, 1);
        assert_eq!(seq, vec![X, B, B, P]);
    }

    #[test]
    fn cleanup_on_all_blank_yields_empty() {
        let mut seq = vec![B, B, B];
        cleanup(&mut seq, 2);
        assert!(seq.is_empty());
        let mut seq: Vec<u32> = vec![];
        cleanup(&mut seq, 0);
        assert!(seq.is_empty());
    }

    #[test]
    fn cleanup_keeps_short_interior_runs() {
        let mut seq = vec![X, B, P];
        cleanup(&mut seq, 1);
        assert_eq!(seq, vec![X, B, P]);
        // γ=0 → cap 1: run of one blank is kept (it still breaks adjacency).
        let mut seq = vec![X, B, P];
        cleanup(&mut seq, 0);
        assert_eq!(seq, vec![X, B, P]);
        // Run of two at γ=0 collapses to one.
        let mut seq = vec![X, B, B, P];
        cleanup(&mut seq, 0);
        assert_eq!(seq, vec![X, B, P]);
    }

    #[test]
    fn cleanup_without_blanks_is_identity() {
        let mut seq = vec![X, P, X];
        cleanup(&mut seq, 1);
        assert_eq!(seq, vec![X, P, X]);
    }
}
