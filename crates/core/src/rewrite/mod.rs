//! Partition construction: rewriting an input sequence `T` into a compact
//! sequence `P_w(T)` that is *w-equivalent* to `T` (paper Sec. 4).
//!
//! Two sequences are w-equivalent when they generate the same set of pivot
//! sequences `G_{w,λ}` (Sec. 4.1); LASH may therefore ship any w-equivalent
//! rewrite to partition `P_w`. The rewrites implemented here, applied in
//! order:
//!
//! 1. **w-generalization** ([`generalize`]) — replace every *w-irrelevant*
//!    item (rank > pivot) by its most specific ancestor with rank ≤ pivot, or
//!    by a blank if none exists;
//! 2. **unreachability reduction** ([`reachability`]) — drop items farther
//!    than λ pivot-chain steps from every pivot occurrence;
//! 3. **isolated pivot removal** ([`blanks`]) — blank out pivots with no
//!    non-blank item within γ+1 positions;
//! 4. **blank cleanup** ([`blanks`]) — strip leading/trailing blanks and cap
//!    interior blank runs at γ+1.

pub mod blanks;
pub mod generalize;
pub mod reachability;

use crate::hierarchy::ItemSpace;
use crate::params::GsmParams;
use crate::BLANK;

/// How much rewriting to perform — the ablation knob for the "optimized
/// partition construction" claims of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewriteLevel {
    /// Ship `P_w(T) = T` unmodified (the paper's strawman in Sec. 4).
    None,
    /// Apply w-generalization only.
    GeneralizeOnly,
    /// All rewrites (the full LASH construction).
    #[default]
    Full,
}

/// Rewrites sequences for a fixed parameter set.
#[derive(Debug, Clone, Copy)]
pub struct Rewriter<'a> {
    space: &'a ItemSpace,
    gamma: usize,
    lambda: usize,
    level: RewriteLevel,
}

impl<'a> Rewriter<'a> {
    /// Creates a full rewriter.
    pub fn new(space: &'a ItemSpace, params: &GsmParams) -> Self {
        Self::with_level(space, params, RewriteLevel::Full)
    }

    /// Creates a rewriter with an explicit [`RewriteLevel`].
    pub fn with_level(space: &'a ItemSpace, params: &GsmParams, level: RewriteLevel) -> Self {
        Rewriter {
            space,
            gamma: params.gamma,
            lambda: params.lambda,
            level,
        }
    }

    /// Produces `P_w(T)` for `pivot`, or `None` when the rewrite proves that
    /// `T` contributes no pivot sequence (e.g. every pivot occurrence is
    /// isolated).
    ///
    /// `seq` is a rank-space sequence (it may already contain blanks).
    pub fn rewrite(&self, seq: &[u32], pivot: u32) -> Option<Vec<u32>> {
        match self.level {
            RewriteLevel::None => {
                // Even the strawman must only emit sequences that can produce
                // a pivot sequence: the pivot (or a descendant) must occur,
                // with some other potential pattern item nearby.
                let has_pivot = seq
                    .iter()
                    .any(|&t| t != BLANK && self.space.generalizes_to(t, pivot));
                (has_pivot && seq.len() >= 2).then(|| seq.to_vec())
            }
            RewriteLevel::GeneralizeOnly => {
                let out = generalize::w_generalize(seq, pivot, self.space);
                self.finish(out, pivot)
            }
            RewriteLevel::Full => {
                let mut out = generalize::w_generalize(seq, pivot, self.space);
                reachability::prune_unreachable(&mut out, pivot, self.gamma, self.lambda);
                blanks::remove_isolated_pivots(&mut out, pivot, self.gamma);
                blanks::cleanup(&mut out, self.gamma);
                self.finish(out, pivot)
            }
        }
    }

    /// Final validity check: the rewritten sequence must still contain a pivot
    /// and at least two non-blank items (a pivot sequence has length ≥ 2).
    fn finish(&self, out: Vec<u32>, pivot: u32) -> Option<Vec<u32>> {
        let mut non_blank = 0usize;
        let mut has_pivot = false;
        for &t in &out {
            if t != BLANK {
                non_blank += 1;
                has_pivot |= t == pivot;
            }
        }
        (has_pivot && non_blank >= 2).then_some(out)
    }

    /// The gap constraint this rewriter was built with.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The length constraint this rewriter was built with.
    pub fn lambda(&self) -> usize {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::enumerate_pivot;
    use crate::testutil::{fig2_context, ranks, Fig2Context};

    fn rewrite_named(
        ctx: &Fig2Context,
        seq: &[&str],
        pivot: &str,
        gamma: usize,
        lambda: usize,
    ) -> Option<Vec<u32>> {
        let params = GsmParams::new(2, gamma, lambda).unwrap();
        let rw = Rewriter::new(ctx.space(), &params);
        rw.rewrite(&ranks(ctx, seq), ctx.rank(pivot))
    }

    fn blanks_as_names(ctx: &Fig2Context, seq: &[u32]) -> Vec<String> {
        seq.iter()
            .map(|&r| {
                if r == BLANK {
                    "_".to_owned()
                } else {
                    ctx.vocab.name(ctx.ctx.order().item(r)).to_owned()
                }
            })
            .collect()
    }

    #[test]
    fn t2_pivot_b_becomes_ab() {
        // Paper Sec. 4.2/4.3: T2 = a b3 c c b2 with pivot B generalizes to
        // aB␣␣B; the trailing B is an isolated pivot (γ=1) and is removed,
        // leaving "aB".
        let ctx = fig2_context();
        let got = rewrite_named(&ctx, &["a", "b3", "c", "c", "b2"], "B", 1, 3).unwrap();
        assert_eq!(blanks_as_names(&ctx, &got), ["a", "B"]);
    }

    #[test]
    fn fig2_partition_pb_rewrites() {
        // Fig. 2: P_B = { aB aB (T1), aB (T2), B a ␣ a (T4), aB (T5) }; T3 and
        // T6 contribute nothing.
        let ctx = fig2_context();
        let t = |seq: &[&str]| rewrite_named(&ctx, seq, "B", 1, 3);
        assert_eq!(
            blanks_as_names(&ctx, &t(&["a", "b1", "a", "b1"]).unwrap()),
            ["a", "B", "a", "B"]
        );
        assert_eq!(
            blanks_as_names(&ctx, &t(&["a", "b3", "c", "c", "b2"]).unwrap()),
            ["a", "B"]
        );
        assert_eq!(
            blanks_as_names(&ctx, &t(&["b11", "a", "e", "a"]).unwrap()),
            ["B", "a", "_", "a"]
        );
        assert_eq!(
            blanks_as_names(&ctx, &t(&["a", "b12", "d1", "c"]).unwrap()),
            ["a", "B"]
        );
        // T6 = b13 f d2 → B ␣ ␣ → isolated pivot → nothing.
        assert_eq!(t(&["b13", "f", "d2"]), None);
        // T3 = a c contains no B at all.
        assert_eq!(t(&["a", "c"]), None);
    }

    #[test]
    fn fig2_partition_pb1_rewrites() {
        // Fig. 2: P_b1 = { a b1 a b1 (T1), b1 a ␣ a (T4), a b1 (T5) }.
        let ctx = fig2_context();
        let t = |seq: &[&str]| rewrite_named(&ctx, seq, "b1", 1, 3);
        assert_eq!(
            blanks_as_names(&ctx, &t(&["a", "b1", "a", "b1"]).unwrap()),
            ["a", "b1", "a", "b1"]
        );
        assert_eq!(
            blanks_as_names(&ctx, &t(&["b11", "a", "e", "a"]).unwrap()),
            ["b1", "a", "_", "a"]
        );
        assert_eq!(
            blanks_as_names(&ctx, &t(&["a", "b12", "d1", "c"]).unwrap()),
            ["a", "b1"]
        );
        assert_eq!(t(&["b13", "f", "d2"]), None);
    }

    #[test]
    fn fig2_partition_pd_rewrites() {
        // Fig. 2: P_D = { a b1 D c (T5), b1 ␣ D (T6) }.
        let ctx = fig2_context();
        let t = |seq: &[&str]| rewrite_named(&ctx, seq, "D", 1, 3);
        assert_eq!(
            blanks_as_names(&ctx, &t(&["a", "b12", "d1", "c"]).unwrap()),
            ["a", "b1", "D", "c"]
        );
        assert_eq!(
            blanks_as_names(&ctx, &t(&["b13", "f", "d2"]).unwrap()),
            ["b1", "_", "D"]
        );
    }

    #[test]
    fn fig2_partition_pa_and_pc_rewrites() {
        let ctx = fig2_context();
        // P_a: only T1 (a...a) and T4 (a ␣ a after isolated-pivot handling?).
        // T1 = a b1 a b1 with pivot a: b1 is irrelevant (rank 2 > 0), B also
        // irrelevant (rank 1 > 0), no relevant ancestor → blanks: a ␣ a ␣ →
        // cleanup → a ␣ a.
        let got = rewrite_named(&ctx, &["a", "b1", "a", "b1"], "a", 1, 3).unwrap();
        assert_eq!(blanks_as_names(&ctx, &got), ["a", "_", "a"]);
        // T4 = b11 a e a → ␣ a ␣ a → a ␣ a.
        let got = rewrite_named(&ctx, &["b11", "a", "e", "a"], "a", 1, 3).unwrap();
        assert_eq!(blanks_as_names(&ctx, &got), ["a", "_", "a"]);
        // T3 = a c → a ␣ → single isolated pivot → nothing.
        assert_eq!(rewrite_named(&ctx, &["a", "c"], "a", 1, 3), None);
        // P_c from T2: a b3 c c b2 → a B c c B.
        let got = rewrite_named(&ctx, &["a", "b3", "c", "c", "b2"], "c", 1, 3).unwrap();
        assert_eq!(blanks_as_names(&ctx, &got), ["a", "B", "c", "c", "B"]);
        // P_c from T5: a b12 d1 c → a b1 ␣ c.
        let got = rewrite_named(&ctx, &["a", "b12", "d1", "c"], "c", 1, 3).unwrap();
        assert_eq!(blanks_as_names(&ctx, &got), ["a", "b1", "_", "c"]);
    }

    #[test]
    fn unreachability_example_lambda2_and_lambda3() {
        // Paper Sec. 4.3: T = a b1 a c d1 a d2 c f b2 c, pivot D, γ = 1.
        // λ=2 → a c D a D c (after blank cleanup); λ=3 → a b1 a c D a D c ␣ B.
        let ctx = fig2_context();
        let seq = ["a", "b1", "a", "c", "d1", "a", "d2", "c", "f", "b2", "c"];
        let got = rewrite_named(&ctx, &seq, "D", 1, 2).unwrap();
        assert_eq!(blanks_as_names(&ctx, &got), ["a", "c", "D", "a", "D", "c"]);
        let got = rewrite_named(&ctx, &seq, "D", 1, 3).unwrap();
        assert_eq!(
            blanks_as_names(&ctx, &got),
            ["a", "b1", "a", "c", "D", "a", "D", "c", "_", "B"]
        );
    }

    #[test]
    fn rewrite_preserves_pivot_sequences_on_paper_database() {
        // w-equivalency (Lemma 3 + Sec. 4.3): G_{w,λ}(T) = G_{w,λ}(P_w(T))
        // for every sequence of the running example, every frequent pivot,
        // and a range of (γ, λ).
        let ctx = fig2_context();
        let space = ctx.space();
        for gamma in 0..3 {
            for lambda in 2..5 {
                let params = GsmParams::new(2, gamma, lambda).unwrap();
                let rw = Rewriter::new(space, &params);
                for idx in 0..6 {
                    let seq = ctx.ranked_seq(idx);
                    for pivot in 0..space.num_frequent() {
                        let original = enumerate_pivot(seq, space, gamma, lambda, pivot);
                        let rewritten = match rw.rewrite(seq, pivot) {
                            Some(r) => enumerate_pivot(&r, space, gamma, lambda, pivot),
                            None => Default::default(),
                        };
                        assert_eq!(
                            original,
                            rewritten,
                            "T{} pivot {pivot} γ={gamma} λ={lambda}",
                            idx + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn generalize_only_level_also_preserves_pivot_sequences() {
        let ctx = fig2_context();
        let space = ctx.space();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let rw = Rewriter::with_level(space, &params, RewriteLevel::GeneralizeOnly);
        for idx in 0..6 {
            let seq = ctx.ranked_seq(idx);
            for pivot in 0..space.num_frequent() {
                let original = enumerate_pivot(seq, space, 1, 3, pivot);
                let rewritten = match rw.rewrite(seq, pivot) {
                    Some(r) => enumerate_pivot(&r, space, 1, 3, pivot),
                    None => Default::default(),
                };
                assert_eq!(original, rewritten, "T{} pivot {pivot}", idx + 1);
            }
        }
    }

    #[test]
    fn level_none_ships_sequences_containing_pivot_descendants() {
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let rw = Rewriter::with_level(ctx.space(), &params, RewriteLevel::None);
        // T2 contains b3 which generalizes to B → shipped unmodified.
        let t2 = ctx.ranked_seq(1);
        assert_eq!(rw.rewrite(t2, ctx.rank("B")).unwrap(), t2.to_vec());
        // T3 = a c has nothing generalizing to B.
        assert_eq!(rw.rewrite(ctx.ranked_seq(2), ctx.rank("B")), None);
    }
}
