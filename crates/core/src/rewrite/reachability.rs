//! Unreachability reduction (paper Sec. 4.3, following MG-FSM).
//!
//! After w-generalization, an index is a *pivot index* iff it holds the pivot
//! item. The left (right) distance of an index is the length of the shortest
//! chain of indexes from a pivot index on its left (right) to the index,
//! where consecutive chain indexes satisfy the gap constraint and
//! intermediate indexes are non-blank. An index whose minimum distance
//! exceeds λ cannot participate in any pivot sequence of length ≤ λ and is
//! removed outright (not blanked — MG-FSM shows removal preserves
//! w-equivalency).

use crate::BLANK;

const INF: u32 = u32::MAX;

/// Removes all unreachable indexes from `seq` in place.
pub fn prune_unreachable(seq: &mut Vec<u32>, pivot: u32, gamma: usize, lambda: usize) {
    let n = seq.len();
    if n == 0 {
        return;
    }
    let left = distances(seq, pivot, gamma, Direction::FromLeft);
    let right = distances(seq, pivot, gamma, Direction::FromRight);
    let lambda = lambda as u32;
    let mut w = 0usize;
    for i in 0..n {
        if left[i].min(right[i]) <= lambda {
            seq[w] = seq[i];
            w += 1;
        }
    }
    seq.truncate(w);
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    FromLeft,
    FromRight,
}

/// Computes pivot-chain distances in one direction. `FromLeft` produces the
/// paper's "left distance" (nearest pivot to the left); `FromRight` the
/// "right distance". Pivot indexes have distance 1, unreachable ones `INF`.
fn distances(seq: &[u32], pivot: u32, gamma: usize, dir: Direction) -> Vec<u32> {
    let n = seq.len();
    let mut dist = vec![INF; n];
    let idx: Box<dyn Iterator<Item = usize>> = match dir {
        Direction::FromLeft => Box::new(0..n),
        Direction::FromRight => Box::new((0..n).rev()),
    };
    for i in idx {
        if seq[i] == pivot {
            dist[i] = 1;
            continue;
        }
        // Best chain through a non-blank predecessor within the gap window.
        let mut best = INF;
        for step in 1..=gamma + 1 {
            let j = match dir {
                Direction::FromLeft => {
                    if i < step {
                        break;
                    }
                    i - step
                }
                Direction::FromRight => {
                    if i + step >= n {
                        break;
                    }
                    i + step
                }
            };
            if seq[j] != BLANK && dist[j] != INF {
                best = best.min(dist[j] + 1);
            }
        }
        dist[i] = best;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::generalize::w_generalize;
    use crate::testutil::{fig2_context, ranks};

    /// The paper's worked distance table (Sec. 4.3): T = a b1 a c d1 a d2 c f
    /// b2 c, pivot D, γ = 1, after D-generalization = a b1 a c D a D c ␣ B c.
    fn paper_sequence() -> (Vec<u32>, u32) {
        let ctx = fig2_context();
        let raw = ranks(
            &ctx,
            &["a", "b1", "a", "c", "d1", "a", "d2", "c", "f", "b2", "c"],
        );
        let pivot = ctx.rank("D");
        (w_generalize(&raw, pivot, ctx.space()), pivot)
    }

    #[test]
    fn distance_table_matches_paper() {
        let (seq, pivot) = paper_sequence();
        let left = distances(&seq, pivot, 1, Direction::FromLeft);
        let right = distances(&seq, pivot, 1, Direction::FromRight);
        // Paper's table (1-based indexes 1..11):
        // left:  - - - - 1 2 1 2 2 3 4
        // right: 3 3 2 2 1 2 1 - - - -
        assert_eq!(left, vec![INF, INF, INF, INF, 1, 2, 1, 2, 2, 3, 4]);
        assert_eq!(right, vec![3, 3, 2, 2, 1, 2, 1, INF, INF, INF, INF]);
        let min: Vec<u32> = left.iter().zip(&right).map(|(&l, &r)| l.min(r)).collect();
        assert_eq!(min, vec![3, 3, 2, 2, 1, 2, 1, 2, 2, 3, 4]);
    }

    #[test]
    fn chains_may_not_pass_through_blanks() {
        // Paper: the left distance of index 11 is 4 via 7,8,10,11 — the chain
        // 7,9,11 is forbidden because index 9 is a blank. With the blank
        // allowed it would be 3; assert it is 4 (covered above) and check a
        // minimal case here.
        let ctx = fig2_context();
        let a = ctx.rank("a");
        let pivot = ctx.rank("D");
        // D ␣ a: left distance of `a` (index 2) must hop directly from the
        // pivot (gap 1 allowed at γ=1) — still 2.
        let seq = vec![pivot, crate::BLANK, a];
        let left = distances(&seq, pivot, 1, Direction::FromLeft);
        assert_eq!(left, vec![1, 2, 2]);
        // With γ=0 the blank blocks the hop entirely.
        let left = distances(&seq, pivot, 0, Direction::FromLeft);
        assert_eq!(left, vec![1, 2, INF]);
    }

    #[test]
    fn prune_lambda2_matches_paper() {
        let (mut seq, pivot) = paper_sequence();
        prune_unreachable(&mut seq, pivot, 1, 2);
        // Paper: "for λ = 2, we obtain the reduced sequence acDaDc␣".
        let ctx = fig2_context();
        let expect = [
            ctx.rank("a"),
            ctx.rank("c"),
            pivot,
            ctx.rank("a"),
            pivot,
            ctx.rank("c"),
            crate::BLANK,
        ];
        assert_eq!(seq, expect);
    }

    #[test]
    fn prune_lambda3_matches_paper() {
        let (mut seq, pivot) = paper_sequence();
        let before = seq.clone();
        prune_unreachable(&mut seq, pivot, 1, 3);
        // Paper: "for λ = 3, we obtain ab1acDaDc␣B" — only the final c drops.
        assert_eq!(seq, before[..10].to_vec());
    }

    #[test]
    fn large_lambda_keeps_everything() {
        let (mut seq, pivot) = paper_sequence();
        let before = seq.clone();
        prune_unreachable(&mut seq, pivot, 1, 100);
        assert_eq!(seq, before);
    }

    #[test]
    fn no_pivot_removes_everything() {
        let ctx = fig2_context();
        let mut seq = ranks(&ctx, &["a", "c", "a"]);
        prune_unreachable(&mut seq, ctx.rank("D"), 1, 3);
        assert!(seq.is_empty());
    }

    #[test]
    fn empty_sequence_is_noop() {
        let mut seq: Vec<u32> = Vec::new();
        prune_unreachable(&mut seq, 0, 1, 3);
        assert!(seq.is_empty());
    }
}
