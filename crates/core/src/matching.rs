//! The generalized subsequence relation `S ⊑γ T` and embedding search.
//!
//! `S = s1…sn` is a generalized subsequence of `T = t1…tm` if there are
//! positions `i1 < … < in` with `t_{ij} →* s_j` (each matched item of `T`
//! equals or specializes the pattern item) and at most `γ` positions between
//! consecutive matches (paper Sec. 2). Blank positions in `T` never match a
//! pattern item but do count toward the gap.

use crate::hierarchy::ItemSpace;
use crate::BLANK;

/// True if `pattern ⊑γ seq`.
///
/// Runs a forward DP over match positions: level `j` keeps the sorted list of
/// positions where `pattern[..=j]` can end; level `j+1` extends any of them
/// within the gap window.
#[allow(clippy::needless_range_loop)] // gap-window scans are clearer with indices
pub fn matches(pattern: &[u32], seq: &[u32], space: &ItemSpace, gamma: usize) -> bool {
    if pattern.is_empty() {
        return true;
    }
    if pattern.len() > seq.len() {
        return false;
    }
    let mut current: Vec<usize> = Vec::new();
    for (p, &t) in seq.iter().enumerate() {
        if t != BLANK && space.generalizes_to(t, pattern[0]) {
            current.push(p);
        }
    }
    for &s in &pattern[1..] {
        if current.is_empty() {
            return false;
        }
        let mut next: Vec<usize> = Vec::new();
        // `current` is sorted ascending; scan seq once with a moving window.
        let mut lo = 0usize;
        for q in current[0] + 1..seq.len() {
            let t = seq[q];
            if t == BLANK || !space.generalizes_to(t, s) {
                continue;
            }
            // Need some p in current with q - gamma - 1 <= p <= q - 1.
            while lo < current.len() && current[lo] + gamma + 1 < q {
                lo += 1;
            }
            if lo < current.len() && current[lo] < q {
                next.push(q);
            }
        }
        current = next;
    }
    !current.is_empty()
}

/// An embedding window of a pattern inside a sequence: the positions of the
/// first and last matched item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Embedding {
    /// Position of the first matched item.
    pub start: u32,
    /// Position of the last matched item.
    pub end: u32,
}

/// All distinct embedding windows of `pattern` in `seq` under gap `gamma`.
///
/// Two embeddings that match different intermediate positions but share the
/// same (start, end) window are collapsed — PSM only needs windows to extend
/// left and right.
#[allow(clippy::needless_range_loop)] // gap-window scans are clearer with indices
pub fn embeddings(pattern: &[u32], seq: &[u32], space: &ItemSpace, gamma: usize) -> Vec<Embedding> {
    if pattern.is_empty() {
        return Vec::new();
    }
    // Level j: sorted, deduped (end, start) pairs for pattern[..=j].
    let mut current: Vec<(u32, u32)> = Vec::new();
    for (p, &t) in seq.iter().enumerate() {
        if t != BLANK && space.generalizes_to(t, pattern[0]) {
            current.push((p as u32, p as u32));
        }
    }
    for &s in &pattern[1..] {
        if current.is_empty() {
            return Vec::new();
        }
        let mut next: Vec<(u32, u32)> = Vec::new();
        for &(end, start) in &current {
            let from = end as usize + 1;
            let to = (end as usize + 1 + gamma).min(seq.len().saturating_sub(1));
            for q in from..=to {
                let t = seq[q];
                if t != BLANK && space.generalizes_to(t, s) {
                    next.push((q as u32, start));
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    let mut out: Vec<Embedding> = current
        .into_iter()
        .map(|(end, start)| Embedding { start, end })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Sums the weights of partition sequences supporting `pattern` — the local
/// frequency `f_γ(pattern, P)`.
pub fn support(
    pattern: &[u32],
    sequences: &[crate::sequence::WeightedSequence],
    space: &ItemSpace,
    gamma: usize,
) -> u64 {
    sequences
        .iter()
        .filter(|ws| matches(pattern, &ws.items, space, gamma))
        .map(|ws| ws.weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_context, ranks};

    #[test]
    fn paper_subsequence_examples_t5() {
        // T5 = a b12 d1 c. Paper Sec. 2: a ⊂0 T5, ab12 ⊂0 T5, ad1c ⊂1 T5,
        // b12 a ⊄ T5, ad1c ⊄0 T5.
        let ctx = fig2_context();
        let t5 = ctx.ranked_seq(4);
        let m = |names: &[&str], gamma: usize| matches(&ranks(&ctx, names), t5, ctx.space(), gamma);
        assert!(m(&["a"], 0));
        assert!(m(&["a", "b12"], 0));
        assert!(m(&["a", "d1", "c"], 1));
        assert!(!m(&["b12", "a"], usize::MAX >> 1));
        assert!(!m(&["a", "d1", "c"], 0));
    }

    #[test]
    fn paper_generalized_examples_t5() {
        // ad1 ⊑1 T5 and aD ⊑1 T5 even though D does not occur in T5.
        let ctx = fig2_context();
        let t5 = ctx.ranked_seq(4);
        assert!(matches(&ranks(&ctx, &["a", "d1"]), t5, ctx.space(), 1));
        assert!(matches(&ranks(&ctx, &["a", "D"]), t5, ctx.space(), 1));
        // But not with gap 0 (b12 sits between a and d1).
        assert!(!matches(&ranks(&ctx, &["a", "D"]), t5, ctx.space(), 0));
    }

    #[test]
    fn paper_support_examples() {
        // Sup0(aBc) = {T2}, Sup1(aBc) = {T2, T5}.
        let ctx = fig2_context();
        let abc = ranks(&ctx, &["a", "B", "c"]);
        let sup = |gamma: usize| {
            (0..6)
                .filter(|&i| matches(&abc, ctx.ranked_seq(i), ctx.space(), gamma))
                .collect::<Vec<_>>()
        };
        assert_eq!(sup(0), vec![1]); // T2 (index 1)
        assert_eq!(sup(1), vec![1, 4]); // T2, T5
    }

    #[test]
    fn blanks_block_matches_but_count_as_gap() {
        let ctx = fig2_context();
        let space = ctx.space();
        let a = ranks(&ctx, &["a"])[0];
        let c = ranks(&ctx, &["c"])[0];
        let seq = [a, crate::BLANK, c];
        // a␣c: "ac" requires gamma >= 1 because the blank occupies a position.
        assert!(!matches(&[a, c], &seq, space, 0));
        assert!(matches(&[a, c], &seq, space, 1));
        // The blank itself never matches anything.
        assert!(!matches(&[crate::BLANK], &seq, space, 0));
    }

    #[test]
    fn embeddings_report_all_windows() {
        let ctx = fig2_context();
        let space = ctx.space();
        let t1 = ctx.ranked_seq(0); // a b1 a b1
        let a = ranks(&ctx, &["a"])[0];
        let b1 = ranks(&ctx, &["b1"])[0];
        let embs = embeddings(&[a, b1], t1, space, 1);
        // a@0-b1@1, a@2-b1@3 (gap 0), a@0..b1@? gap1: a@0,b1@1; a@2,b1@3; also a@0→b1@? position 1 only within gap 1 → (0,1); a@2→(2,3).
        assert_eq!(
            embs,
            vec![
                Embedding { start: 0, end: 1 },
                Embedding { start: 2, end: 3 }
            ]
        );
        // With the generalized pattern aB, the same windows match.
        let b_cap = ranks(&ctx, &["B"])[0];
        let embs = embeddings(&[a, b_cap], t1, space, 1);
        assert_eq!(embs.len(), 2);
    }

    #[test]
    fn embedding_windows_dedup_interior_variation() {
        // seq = a x x a where pattern "aa" has one window (0,3) at gamma=2.
        let ctx = fig2_context();
        let space = ctx.space();
        let a = ranks(&ctx, &["a"])[0];
        let c = ranks(&ctx, &["c"])[0];
        let seq = [a, c, c, a];
        let embs = embeddings(&[a, a], &seq, space, 2);
        assert_eq!(embs, vec![Embedding { start: 0, end: 3 }]);
    }

    #[test]
    fn empty_and_oversized_patterns() {
        let ctx = fig2_context();
        let t3 = ctx.ranked_seq(2); // a c
        assert!(matches(&[], t3, ctx.space(), 0));
        let a = ranks(&ctx, &["a"])[0];
        assert!(!matches(&[a, a, a], t3, ctx.space(), 9));
        assert!(embeddings(&[], t3, ctx.space(), 0).is_empty());
    }

    #[test]
    fn support_weights_partition_sequences() {
        use crate::sequence::WeightedSequence;
        let ctx = fig2_context();
        let space = ctx.space();
        let a = ranks(&ctx, &["a"])[0];
        let b_cap = ranks(&ctx, &["B"])[0];
        let part = vec![
            WeightedSequence::new(vec![a, b_cap], 2),
            WeightedSequence::new(vec![b_cap, a], 1),
        ];
        assert_eq!(support(&[a, b_cap], &part, space, 0), 2);
        assert_eq!(support(&[b_cap], &part, space, 0), 3);
    }
}
