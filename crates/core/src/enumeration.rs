//! Enumeration of generalized subsequences: `G1(T)` and `Gλ(T)`.
//!
//! `G1(T)` is the set of items occurring in `T` together with all their
//! generalizations — the unit of the f-list computation and of partition
//! routing. `Gλ(T)` is the full set of generalized subsequences of `T`
//! respecting the gap and length constraints — the (deliberately exponential)
//! unit of the naive baseline and the ground truth for every other miner.

use crate::fxhash::FxHashSet;
use crate::hierarchy::ItemSpace;
use crate::vocabulary::{ItemId, Vocabulary};
use crate::BLANK;

/// Computes `G1(T)` in vocabulary space: the distinct items of `seq` plus all
/// their ancestors. The result is sorted and deduplicated into `out`.
pub fn g1_items(seq: &[ItemId], vocab: &Vocabulary, out: &mut Vec<ItemId>) {
    out.clear();
    for &t in seq {
        out.extend_from_slice(vocab.chain(t));
    }
    out.sort_unstable();
    out.dedup();
}

/// Computes `G1(T)` in rank space, skipping blanks. The result is sorted
/// (most frequent first) and deduplicated into `out`.
pub fn g1_ranks(seq: &[u32], space: &ItemSpace, out: &mut Vec<u32>) {
    out.clear();
    for &t in seq {
        if t != BLANK {
            out.extend_from_slice(space.chain(t));
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Enumerates `Gλ(T)`: every generalized subsequence `S ⊑γ T` with
/// `2 ≤ |S| ≤ λ` (paper Sec. 3.2; the paper writes `1 < |S| ≤ λ`).
///
/// Blank positions are never part of a pattern but occupy gap positions.
/// The output is a set — each distinct generalized subsequence appears once
/// regardless of how many embeddings it has, matching document-frequency
/// semantics.
pub fn enumerate_gl(
    seq: &[u32],
    space: &ItemSpace,
    gamma: usize,
    lambda: usize,
) -> FxHashSet<Vec<u32>> {
    let mut out = FxHashSet::default();
    let mut current = Vec::with_capacity(lambda);
    for start in 0..seq.len() {
        let t = seq[start];
        if t == BLANK {
            continue;
        }
        for &anc in space.chain(t) {
            current.push(anc);
            extend(seq, space, gamma, lambda, start, &mut current, &mut out);
            current.pop();
        }
    }
    out
}

fn extend(
    seq: &[u32],
    space: &ItemSpace,
    gamma: usize,
    lambda: usize,
    last: usize,
    current: &mut Vec<u32>,
    out: &mut FxHashSet<Vec<u32>>,
) {
    if current.len() >= 2 {
        out.insert(current.clone());
    }
    if current.len() == lambda {
        return;
    }
    let from = last + 1;
    let to = (last + 1 + gamma).min(seq.len().saturating_sub(1));
    for q in from..=to {
        let t = seq[q];
        if t == BLANK {
            continue;
        }
        for &anc in space.chain(t) {
            current.push(anc);
            extend(seq, space, gamma, lambda, q, current, out);
            current.pop();
        }
    }
}

/// Enumerates the pivot-restricted set `G_{w,λ}(T)`: the elements of `Gλ(T)`
/// whose pivot (largest rank) is exactly `pivot` (paper Eq. 2).
pub fn enumerate_pivot(
    seq: &[u32],
    space: &ItemSpace,
    gamma: usize,
    lambda: usize,
    pivot: u32,
) -> FxHashSet<Vec<u32>> {
    enumerate_gl(seq, space, gamma, lambda)
        .into_iter()
        .filter(|s| s.iter().copied().max() == Some(pivot))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_context, named_set, ranks};

    #[test]
    fn g1_of_t4_matches_paper() {
        // G1(T4) = {b11, a, e, b1, B} (paper Sec. 3.3 lists b11, a, e, a, b1, B).
        let ctx = fig2_context();
        let mut out = Vec::new();
        g1_ranks(ctx.ranked_seq(3), ctx.space(), &mut out);
        let expected = ranks(&ctx, &["a", "B", "b1", "e", "b11"]);
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        assert_eq!(out, expected_sorted);
    }

    #[test]
    fn g3_of_t4_matches_paper() {
        // Paper Sec. 3.2: for T4 = b11 a e a, γ = 1, λ = 3:
        // G3(T4) = { b11a, b11e, ae, aa, ea, b11ae, b11aa, b11ea, aea,
        //            b1a, b1e, b1ae, b1aa, b1ea, Ba, Be, Bae, Baa, Bea }.
        let ctx = fig2_context();
        let got = enumerate_gl(ctx.ranked_seq(3), ctx.space(), 1, 3);
        let expected = named_set(
            &ctx,
            &[
                "b11 a", "b11 e", "a e", "a a", "e a", "b11 a e", "b11 a a", "b11 e a", "a e a",
                "b1 a", "b1 e", "b1 a e", "b1 a a", "b1 e a", "B a", "B e", "B a e", "B a a",
                "B e a",
            ],
        );
        assert_eq!(got, expected);
        assert_eq!(got.len(), 19);
    }

    #[test]
    fn gb1_2_of_t1_matches_paper() {
        // Paper Eq. 3: G_{b1,2}(T1) = {ab1, b1a, b1b1, b1B, Bb1} for γ=1, λ=2
        // (BB is excluded: its pivot is B, not b1).
        let ctx = fig2_context();
        let pivot = ranks(&ctx, &["b1"])[0];
        let got = enumerate_pivot(ctx.ranked_seq(0), ctx.space(), 1, 2, pivot);
        let expected = named_set(&ctx, &["a b1", "b1 a", "b1 b1", "b1 B", "B b1"]);
        assert_eq!(got, expected);
    }

    #[test]
    fn gb_2_of_t2_matches_paper() {
        // Paper Sec. 4.1: G_{B,2}(T2) = {aB} for γ=1, λ=2.
        let ctx = fig2_context();
        let pivot = ranks(&ctx, &["B"])[0];
        let got = enumerate_pivot(ctx.ranked_seq(1), ctx.space(), 1, 2, pivot);
        assert_eq!(got, named_set(&ctx, &["a B"]));
    }

    #[test]
    fn blanks_are_skipped_but_occupy_gap_positions() {
        let ctx = fig2_context();
        let a = ranks(&ctx, &["a"])[0];
        let c = ranks(&ctx, &["c"])[0];
        let seq = [a, crate::BLANK, c];
        // γ=0: the blank breaks adjacency.
        assert!(enumerate_gl(&seq, ctx.space(), 0, 3).is_empty());
        // γ=1: "ac" spans the blank.
        let got = enumerate_gl(&seq, ctx.space(), 1, 3);
        assert_eq!(got, named_set(&ctx, &["a c"]));
    }

    #[test]
    fn respects_lambda() {
        let ctx = fig2_context();
        let got = enumerate_gl(ctx.ranked_seq(0), ctx.space(), 1, 2);
        assert!(got.iter().all(|s| s.len() == 2));
        let got3 = enumerate_gl(ctx.ranked_seq(0), ctx.space(), 1, 3);
        assert!(got3.len() > got.len());
        assert!(got3.iter().all(|s| s.len() <= 3));
        assert!(got3.is_superset(&got));
    }

    #[test]
    fn short_sequences_produce_nothing() {
        let ctx = fig2_context();
        let a = ranks(&ctx, &["a"])[0];
        assert!(enumerate_gl(&[a], ctx.space(), 1, 3).is_empty());
        assert!(enumerate_gl(&[], ctx.space(), 1, 3).is_empty());
    }
}
