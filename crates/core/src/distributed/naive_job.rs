//! The naive baseline (paper Sec. 3.2): "word counting" over every
//! generalized subsequence of every input sequence.
//!
//! The map function emits each element of `Gλ(T)` as a key with count 1; the
//! reducer sums and thresholds. Output size is `O(l^δλ)` per sequence at
//! γ = 0 and `O((δ+1)^l)` unconstrained — the exponential blow-up Fig. 4(a,b)
//! quantifies.

use lash_mapreduce::{run_job, Emitter, EngineConfig, Job, JobMetrics};

use crate::context::MiningContext;
use crate::enumeration::enumerate_gl;
use crate::error::{Error, Result};
use crate::params::GsmParams;
use crate::pattern::PatternSet;

/// The naive mining job over a preprocessed (rank-encoded) database.
pub struct NaiveJob<'a> {
    ctx: &'a MiningContext,
    params: GsmParams,
}

impl Job for NaiveJob<'_> {
    type Input = u32;
    type Key = Vec<u32>;
    type Value = u64;
    type Output = (Vec<u32>, u64);

    fn map(&self, &idx: &u32, emit: &mut Emitter<'_, Self>) {
        let seq = self.ctx.ranked_seq(idx as usize);
        for sub in enumerate_gl(seq, self.ctx.space(), self.params.gamma, self.params.lambda) {
            emit.emit(sub, 1);
        }
    }

    fn combine(&self, _key: &Vec<u32>, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn reduce(
        &self,
        key: Vec<u32>,
        values: impl Iterator<Item = u64>,
        out: &mut Vec<(Vec<u32>, u64)>,
    ) {
        let frequency: u64 = values.sum();
        if frequency >= self.params.sigma {
            out.push((key, frequency));
        }
    }

    fn encode_key(&self, key: &Vec<u32>, buf: &mut Vec<u8>) {
        super::encode_pattern_key(key, buf);
    }
    fn decode_key(&self, bytes: &[u8]) -> Vec<u32> {
        super::decode_pattern_key(bytes)
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        super::encode_count(*value, buf);
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        super::decode_count(bytes)
    }
}

/// Runs the naive baseline over a prepared context.
pub fn run_naive(
    ctx: &MiningContext,
    params: &GsmParams,
    cluster: &EngineConfig,
) -> Result<(PatternSet, JobMetrics)> {
    let job = NaiveJob {
        ctx,
        params: *params,
    };
    let inputs: Vec<u32> = (0..ctx.ranked_db().len() as u32).collect();
    let result = run_job(&job, &inputs, cluster).map_err(|e| Error::Engine(e.to_string()))?;
    Ok((PatternSet::from_pairs(result.outputs), result.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_context, named_patterns};

    #[test]
    fn naive_reproduces_paper_output() {
        // Paper Sec. 2: for σ=2, γ=1, λ=3 the full GSM output is the ten
        // pairs below.
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let (got, metrics) = run_naive(
            &ctx.ctx,
            &params,
            &EngineConfig::default().with_split_size(2),
        )
        .unwrap();
        let want = named_patterns(
            &ctx,
            &[
                ("a a", 2),
                ("a b1", 2),
                ("b1 a", 2),
                ("a B", 3),
                ("B a", 2),
                ("a B c", 2),
                ("B c", 2),
                ("a c", 2),
                ("b1 D", 2),
                ("B D", 2),
            ],
        );
        assert_eq!(got, want, "diff: {:?}", got.diff(&want));
        assert!(metrics.counters.map_output_records > 0);
    }
}
