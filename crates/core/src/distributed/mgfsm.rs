//! MG-FSM (Miliaraki et al., SIGMOD'13) as a baseline: item-based
//! partitioning *without* hierarchies.
//!
//! The paper's footnote 3 observes that LASH run on data without hierarchies
//! is exactly MG-FSM with its local miner replaced by PSM. We therefore
//! implement MG-FSM as the LASH pipeline with (a) all parent links stripped
//! from the vocabulary and (b) a BFS local miner (MG-FSM's standard choice);
//! "LASH without hierarchies" is the same pipeline with PSM, which is what
//! Fig. 4(e) compares.

use crate::distributed::lash_job::{Lash, LashConfig, LashResult, MinerKind};
use crate::error::Result;
use crate::params::GsmParams;
use crate::sequence::SequenceDatabase;
use crate::vocabulary::Vocabulary;
use lash_mapreduce::EngineConfig;

/// The MG-FSM baseline driver.
#[derive(Debug, Default)]
pub struct MgFsm {
    lash: Lash,
}

impl MgFsm {
    /// Creates MG-FSM on the given cluster (flat mining, BFS local miner).
    pub fn new(cluster: EngineConfig) -> Self {
        MgFsm {
            lash: Lash::new(
                LashConfig::new(cluster)
                    .with_miner(MinerKind::Bfs)
                    .with_hierarchy(false),
            ),
        }
    }

    /// Mines frequent (non-generalized) sequences.
    pub fn mine(
        &self,
        db: &SequenceDatabase,
        vocab: &Vocabulary,
        params: &GsmParams,
    ) -> Result<LashResult> {
        self.lash.mine(db, vocab, params)
    }
}

/// "LASH without hierarchies": the same flat pipeline with PSM+Index — the
/// configuration the paper credits for its 2–5× win over MG-FSM (Sec. 6.3).
pub fn lash_flat(cluster: EngineConfig) -> Lash {
    Lash::new(
        LashConfig::new(cluster)
            .with_miner(MinerKind::PsmIndexed)
            .with_hierarchy(false),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2_context, named_patterns};

    #[test]
    fn flat_mining_ignores_generalizations() {
        // On Fig. 1 with σ=2, γ=1, λ=3 and no hierarchy, only `a` and `c` are
        // frequent items and the output is {aa:2, ac:2}.
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let mgfsm = MgFsm::new(EngineConfig::default().with_split_size(2));
        let result = mgfsm.mine(&db, &vocab, &params).unwrap();
        let named: Vec<(Vec<String>, u64)> = result
            .patterns()
            .iter()
            .map(|p| (p.to_names(&vocab), p.frequency))
            .collect();
        assert_eq!(
            named,
            vec![
                (vec!["a".into(), "a".into()], 2),
                (vec!["a".into(), "c".into()], 2),
            ]
        );
    }

    #[test]
    fn mgfsm_and_flat_lash_agree() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let cluster = EngineConfig::default().with_split_size(2);
        let a = MgFsm::new(cluster.clone())
            .mine(&db, &vocab, &params)
            .unwrap();
        let b = lash_flat(cluster).mine(&db, &vocab, &params).unwrap();
        assert_eq!(a.pattern_set(), b.pattern_set());
    }

    #[test]
    fn flat_output_is_subset_of_generalized_output_frequencies() {
        // Every flat-frequent sequence is also GSM-frequent with at least the
        // same frequency (generalized support can only grow).
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let cluster = EngineConfig::default().with_split_size(2);
        let flat = MgFsm::new(cluster.clone())
            .mine(&db, &vocab, &params)
            .unwrap();
        let gsm = Lash::new(LashConfig::new(cluster))
            .mine(&db, &vocab, &params)
            .unwrap();
        let ctx = fig2_context();
        let want = named_patterns(&ctx, &[("a a", 2), ("a c", 2)]);
        // Compare in name space because the two runs use different rank maps.
        for pattern in flat.patterns() {
            let names = pattern.to_names(&vocab);
            let gsm_match = gsm
                .patterns()
                .iter()
                .find(|p| p.to_names(&vocab) == names)
                .unwrap_or_else(|| panic!("flat pattern {names:?} missing from GSM output"));
            assert!(gsm_match.frequency >= pattern.frequency);
        }
        assert_eq!(want.len(), flat.patterns().len());
    }
}
