//! The LASH partition-and-mine job (paper Alg. 1) and the public driver.
//!
//! The map function routes each input sequence `T` to the partition of every
//! frequent item `w ∈ G1(T)`, shipping the rewritten sequence `P_w(T)`
//! (Sec. 4). The combiner aggregates duplicate rewrites into weighted
//! sequences; each reduce task assembles its partition and runs the
//! configured local miner, emitting the frequent pivot sequences.

use std::sync::Mutex;

use lash_mapreduce::{run_job, Emitter, EngineConfig, Job, JobMetrics};

use crate::context::MiningContext;
use crate::enumeration::g1_ranks;
use crate::error::{Error, Result};
use crate::flist::FList;
use crate::fxhash::FxHashMap;
use crate::miner::{BfsMiner, DfsMiner, LocalMiner, MinerStats, NaiveMiner, PsmMiner};
use crate::params::GsmParams;
use crate::pattern::{Pattern, PatternSet};
use crate::rewrite::{RewriteLevel, Rewriter};
use crate::sequence::{Partition, SequenceDatabase, ShardedCorpus};
use crate::vocabulary::Vocabulary;

use super::flist_job::{compute_flist_distributed, compute_flist_sharded};

/// Publishes one reduce-side mine call to the process-wide registry: the
/// partition's wall time as a `mine.partition` span (parented under the
/// ambient reduce-task span, feeding the `mine.partition_us` histogram)
/// and the miner's work counters under `mine.*`.
fn publish_mine(pivot: u32, stats: &MinerStats, elapsed: std::time::Duration) {
    let obs = lash_obs::global();
    obs.observe_span(
        "mine.partition",
        elapsed,
        &[("pivot", pivot.into()), ("outputs", stats.outputs.into())],
    );
    obs.counter("mine.partitions").inc();
    obs.counter("mine.candidates").add(stats.candidates);
    obs.counter("mine.expansions").add(stats.expansions);
    obs.counter("mine.outputs").add(stats.outputs);
}

/// Which local miner runs in the reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinerKind {
    /// Exhaustive enumeration (ground truth; exponential).
    Naive,
    /// Hierarchy-aware SPADE (Sec. 5.1).
    Bfs,
    /// Hierarchy-aware PrefixSpan (Sec. 5.1).
    Dfs,
    /// Pivot sequence miner (Sec. 5.2).
    Psm,
    /// PSM with the right-expansion index (the paper's default).
    #[default]
    PsmIndexed,
}

impl MinerKind {
    /// Instantiates the miner.
    pub fn instantiate(&self) -> Box<dyn LocalMiner> {
        match self {
            MinerKind::Naive => Box::new(NaiveMiner),
            MinerKind::Bfs => Box::new(BfsMiner),
            MinerKind::Dfs => Box::new(DfsMiner),
            MinerKind::Psm => Box::new(PsmMiner::plain()),
            MinerKind::PsmIndexed => Box::new(PsmMiner::indexed()),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MinerKind::Naive => "Naive",
            MinerKind::Bfs => "BFS",
            MinerKind::Dfs => "DFS",
            MinerKind::Psm => "PSM",
            MinerKind::PsmIndexed => "PSM+Index",
        }
    }
}

/// Configuration of a LASH run.
#[derive(Debug, Clone)]
pub struct LashConfig {
    /// The MapReduce cluster configuration.
    pub cluster: EngineConfig,
    /// The local miner for the reduce phase.
    pub miner: MinerKind,
    /// How aggressively to rewrite sequences during partitioning (ablation
    /// knob; `Full` is LASH).
    pub rewrite_level: RewriteLevel,
    /// Aggregate duplicate rewritten sequences in the combiner (Sec. 4.4).
    pub aggregate: bool,
    /// Ignore the item hierarchy (flat mining — MG-FSM mode; Sec. 6.3).
    pub ignore_hierarchy: bool,
}

impl LashConfig {
    /// The paper's default configuration: full rewrites, aggregation,
    /// PSM+Index.
    pub fn new(cluster: EngineConfig) -> Self {
        LashConfig {
            cluster,
            miner: MinerKind::PsmIndexed,
            rewrite_level: RewriteLevel::Full,
            aggregate: true,
            ignore_hierarchy: false,
        }
    }

    /// Sets the local miner.
    pub fn with_miner(mut self, miner: MinerKind) -> Self {
        self.miner = miner;
        self
    }

    /// Sets the rewrite level.
    pub fn with_rewrite_level(mut self, level: RewriteLevel) -> Self {
        self.rewrite_level = level;
        self
    }

    /// Enables or disables combiner aggregation.
    pub fn with_aggregation(mut self, on: bool) -> Self {
        self.aggregate = on;
        self
    }

    /// Enables or disables hierarchy-aware mining.
    pub fn with_hierarchy(mut self, on: bool) -> Self {
        self.ignore_hierarchy = !on;
        self
    }
}

impl Default for LashConfig {
    /// The paper's defaults on a default cluster (aggregation on, full
    /// rewrites, PSM+Index).
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

/// The LASH driver: preprocessing job + partition-and-mine job.
///
/// See the crate-level example for usage.
#[derive(Debug, Default)]
pub struct Lash {
    config: LashConfig,
}

impl Lash {
    /// Creates a driver with the given configuration.
    pub fn new(config: LashConfig) -> Self {
        Lash { config }
    }

    /// The effective configuration.
    pub fn config(&self) -> &LashConfig {
        &self.config
    }

    /// Runs the full pipeline on `db` with vocabulary `vocab`.
    pub fn mine(
        &self,
        db: &SequenceDatabase,
        vocab: &Vocabulary,
        params: &GsmParams,
    ) -> Result<LashResult> {
        let _job_span = lash_obs::span!(
            "mine.job",
            sigma = params.sigma,
            gamma = params.gamma,
            lambda = params.lambda,
            miner = self.config.miner.name(),
        );
        let stripped;
        let vocab_eff: &Vocabulary = if self.config.ignore_hierarchy {
            stripped = vocab.without_hierarchy();
            &stripped
        } else {
            vocab
        };
        let (flist, preprocess_metrics) =
            compute_flist_distributed(db, vocab_eff, &self.config.cluster)?;
        let ctx = MiningContext::from_flist(db, vocab_eff, flist, params.sigma);
        let (rank_patterns, mine_metrics, miner_stats, num_partitions) =
            run_partition_and_mine(&ctx, params, &self.config)?;
        Ok(assemble_result(
            ctx,
            rank_patterns,
            preprocess_metrics,
            mine_metrics,
            miner_stats,
            num_partitions,
        ))
    }

    /// Runs the full pipeline over any [`ShardedCorpus`] — an in-memory
    /// database or an on-disk corpus opened by `lash-store`.
    ///
    /// Both jobs run at shard granularity: each map task streams one shard,
    /// so a multi-shard corpus is scanned by parallel map tasks and is never
    /// materialized in memory as a whole. Sequences are ranked on the fly.
    ///
    /// `flist` may carry a precomputed generalized f-list (e.g. assembled
    /// from the corpus's block headers without decoding any payload); when
    /// `None` — or when the hierarchy is ignored, which invalidates any
    /// hierarchy-closed precomputation — the sharded f-list job runs first.
    pub fn mine_sharded<C: ShardedCorpus>(
        &self,
        corpus: &C,
        vocab: &Vocabulary,
        params: &GsmParams,
        flist: Option<FList>,
    ) -> Result<LashResult> {
        let _job_span = lash_obs::span!(
            "mine.job",
            sigma = params.sigma,
            gamma = params.gamma,
            lambda = params.lambda,
            miner = self.config.miner.name(),
            sharded = true,
        );
        let stripped;
        let vocab_eff: &Vocabulary = if self.config.ignore_hierarchy {
            stripped = vocab.without_hierarchy();
            &stripped
        } else {
            vocab
        };
        let precomputed = if self.config.ignore_hierarchy {
            None
        } else {
            flist
        };
        let (flist, preprocess_metrics) = match precomputed {
            Some(f) => (f, JobMetrics::default()),
            None => compute_flist_sharded(corpus, vocab_eff, &self.config.cluster)?,
        };
        let ctx = MiningContext::from_flist_only(vocab_eff, flist, params.sigma);
        let (rank_patterns, mine_metrics, miner_stats, num_partitions) =
            run_partition_and_mine_sharded(corpus, &ctx, params, &self.config)?;
        Ok(assemble_result(
            ctx,
            rank_patterns,
            preprocess_metrics,
            mine_metrics,
            miner_stats,
            num_partitions,
        ))
    }
}

/// Decodes rank-space patterns and packages a [`LashResult`].
fn assemble_result(
    ctx: MiningContext,
    rank_patterns: PatternSet,
    preprocess_metrics: JobMetrics,
    mine_metrics: JobMetrics,
    miner_stats: MinerStats,
    num_partitions: u64,
) -> LashResult {
    let mut patterns: Vec<Pattern> = rank_patterns
        .iter()
        .map(|(ranks, frequency)| Pattern {
            items: ctx.decode(ranks),
            frequency,
        })
        .collect();
    patterns.sort_by(|a, b| b.frequency.cmp(&a.frequency).then(a.items.cmp(&b.items)));
    LashResult {
        patterns,
        rank_patterns,
        context: ctx,
        preprocess_metrics,
        mine_metrics,
        miner_stats,
        num_partitions,
    }
}

/// Result of a LASH run.
#[derive(Debug)]
pub struct LashResult {
    patterns: Vec<Pattern>,
    rank_patterns: PatternSet,
    context: MiningContext,
    /// Metrics of the f-list (preprocessing) job.
    pub preprocess_metrics: JobMetrics,
    /// Metrics of the partition-and-mine job.
    pub mine_metrics: JobMetrics,
    /// Aggregated local-miner search-space statistics.
    pub miner_stats: MinerStats,
    /// Number of non-empty partitions mined.
    pub num_partitions: u64,
}

impl LashResult {
    /// The mined patterns in vocabulary space, sorted by descending
    /// frequency with ties broken by ascending items.
    ///
    /// The order is **deterministic**: the pattern set is assembled through
    /// an ordered [`PatternSet`] and this final sort is total (items are
    /// unique), so repeated runs over the same corpus and parameters —
    /// across `mine`/`mine_sharded`, any parallelism, and the in-memory vs
    /// spilled shuffle paths — return the identical `Vec`. Consumers that
    /// persist the output (e.g. the `lash-index` trie builder, which
    /// requires lexicographically sorted input — see
    /// [`crate::pattern::sort_patterns_lexicographic`]) rely on this.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// The mined patterns in rank space.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.rank_patterns
    }

    /// The preprocessing context (f-list, order, rank hierarchy).
    pub fn context(&self) -> &MiningContext {
        &self.context
    }

    /// Total wall time across both jobs.
    pub fn total_time(&self) -> std::time::Duration {
        self.preprocess_metrics.total_time + self.mine_metrics.total_time
    }
}

/// The shared map-side kernel of Alg. 1: routes one ranked sequence to the
/// partition of every frequent pivot in `G1(T)`, shipping its rewrite.
fn map_ranked_sequence<J: Job<Key = u32, Value = (Vec<u32>, u64)>>(
    seq: &[u32],
    ctx: &MiningContext,
    rewriter: &Rewriter<'_>,
    g1: &mut Vec<u32>,
    emit: &mut Emitter<'_, J>,
) {
    g1_ranks(seq, ctx.space(), g1);
    for &w in g1.iter() {
        if !ctx.space().is_frequent(w) {
            // g1 is sorted ascending; everything after is infrequent too.
            break;
        }
        if let Some(rewritten) = rewriter.rewrite(seq, w) {
            emit.emit(w, (rewritten, 1));
        }
    }
}

/// The partition-and-mine MapReduce job (Alg. 1).
struct LashJob<'a> {
    ctx: &'a MiningContext,
    params: GsmParams,
    rewrite_level: RewriteLevel,
    aggregate: bool,
    miner: Box<dyn LocalMiner>,
    stats: Mutex<(MinerStats, u64)>,
}

impl Job for LashJob<'_> {
    type Input = u32;
    type Key = u32;
    type Value = (Vec<u32>, u64);
    type Output = (Vec<u32>, u64);

    fn map(&self, &idx: &u32, emit: &mut Emitter<'_, Self>) {
        let seq = self.ctx.ranked_seq(idx as usize);
        let rewriter = Rewriter::with_level(self.ctx.space(), &self.params, self.rewrite_level);
        let mut g1 = Vec::new();
        map_ranked_sequence(seq, self.ctx, &rewriter, &mut g1, emit);
    }

    fn combine(&self, _key: &u32, values: Vec<(Vec<u32>, u64)>) -> Vec<(Vec<u32>, u64)> {
        if !self.aggregate {
            return values;
        }
        let mut agg: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for (seq, w) in values {
            *agg.entry(seq).or_insert(0) += w;
        }
        let mut out: Vec<(Vec<u32>, u64)> = agg.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn reduce(
        &self,
        pivot: u32,
        values: impl Iterator<Item = (Vec<u32>, u64)>,
        out: &mut Vec<(Vec<u32>, u64)>,
    ) {
        // The local miners need the whole partition, so the value stream is
        // aggregated here — one partition resident per reduce task, which is
        // exactly the bound the paper's reduce phase has.
        let partition = Partition::aggregate(values);
        let mine_started = std::time::Instant::now();
        let (patterns, stats) = self
            .miner
            .mine(&partition, pivot, self.ctx.space(), &self.params);
        publish_mine(pivot, &stats, mine_started.elapsed());
        {
            let mut guard = self.stats.lock().expect("stats lock");
            guard.0.absorb(stats);
            guard.1 += 1;
        }
        for (pattern, frequency) in patterns {
            out.push((pattern, frequency));
        }
    }

    fn encode_key(&self, key: &u32, buf: &mut Vec<u8>) {
        super::encode_u32_key(*key, buf);
    }
    fn decode_key(&self, bytes: &[u8]) -> u32 {
        super::decode_u32_key(bytes)
    }
    fn encode_value(&self, value: &(Vec<u32>, u64), buf: &mut Vec<u8>) {
        super::encode_weighted_seq(&value.0, value.1, buf);
    }
    fn decode_value(&self, bytes: &[u8]) -> (Vec<u32>, u64) {
        super::decode_weighted_seq(bytes)
    }
}

/// Runs the partition-and-mine job over a prepared context.
pub(crate) fn run_partition_and_mine(
    ctx: &MiningContext,
    params: &GsmParams,
    config: &LashConfig,
) -> Result<(PatternSet, JobMetrics, MinerStats, u64)> {
    let job = LashJob {
        ctx,
        params: *params,
        rewrite_level: config.rewrite_level,
        aggregate: config.aggregate,
        miner: config.miner.instantiate(),
        stats: Mutex::new((MinerStats::default(), 0)),
    };
    let inputs: Vec<u32> = (0..ctx.ranked_db().len() as u32).collect();
    let result =
        run_job(&job, &inputs, &config.cluster).map_err(|e| Error::Engine(e.to_string()))?;
    let (miner_stats, partitions) = *job.stats.lock().expect("stats lock");
    Ok((
        PatternSet::from_pairs(result.outputs),
        result.metrics,
        miner_stats,
        partitions,
    ))
}

/// The partition-and-mine job at shard granularity: each map task streams
/// one shard of a [`ShardedCorpus`], ranking sequences on the fly. The
/// combiner, reducer, and wire format are identical to [`LashJob`].
struct ShardedLashJob<'a, C> {
    corpus: &'a C,
    ctx: &'a MiningContext,
    params: GsmParams,
    rewrite_level: RewriteLevel,
    aggregate: bool,
    /// True when the corpus stores items pre-ranked in exactly this
    /// context's order (checked once in `run_partition_and_mine_sharded`),
    /// making the map phase's per-item rank lookup a pass-through of the
    /// stored bytes.
    ranked_scan: bool,
    miner: Box<dyn LocalMiner>,
    stats: Mutex<(MinerStats, u64)>,
    scan_error: Mutex<Option<Error>>,
}

impl<C: ShardedCorpus> Job for ShardedLashJob<'_, C> {
    type Input = u32;
    type Key = u32;
    type Value = (Vec<u32>, u64);
    type Output = (Vec<u32>, u64);

    fn map(&self, &shard: &u32, emit: &mut Emitter<'_, Self>) {
        let rewriter = Rewriter::with_level(self.ctx.space(), &self.params, self.rewrite_level);
        let mut ranked = Vec::new();
        let mut g1 = Vec::new();
        // A sequence with no frequent item in its G1 closure emits nothing,
        // so the corpus may skip whole blocks whose sketch proves exactly
        // that (long-tail shards never even decode them).
        let ctx = self.ctx;
        let frequent =
            move |item: crate::vocabulary::ItemId| ctx.space().is_frequent(ctx.order().rank(item));
        let result = if self.ranked_scan {
            // Rank-encoded corpus in this exact order: the stored items
            // *are* the ranks — no per-item re-encoding.
            self.corpus
                .scan_shard_ranked(shard as usize, &frequent, &mut |_, seq| {
                    ranked.clear();
                    ranked.extend(seq.iter().map(|r| r.as_u32()));
                    map_ranked_sequence(&ranked, self.ctx, &rewriter, &mut g1, emit);
                })
        } else {
            self.corpus
                .scan_shard_pruned(shard as usize, &frequent, &mut |_, seq| {
                    ranked.clear();
                    ranked.extend(seq.iter().map(|&it| self.ctx.order().rank(it)));
                    map_ranked_sequence(&ranked, self.ctx, &rewriter, &mut g1, emit);
                })
        };
        if let Err(e) = result {
            self.scan_error
                .lock()
                .expect("scan error lock")
                .get_or_insert(e);
        }
    }

    fn combine(&self, _key: &u32, values: Vec<(Vec<u32>, u64)>) -> Vec<(Vec<u32>, u64)> {
        if !self.aggregate {
            return values;
        }
        let mut agg: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for (seq, w) in values {
            *agg.entry(seq).or_insert(0) += w;
        }
        let mut out: Vec<(Vec<u32>, u64)> = agg.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn reduce(
        &self,
        pivot: u32,
        values: impl Iterator<Item = (Vec<u32>, u64)>,
        out: &mut Vec<(Vec<u32>, u64)>,
    ) {
        let partition = Partition::aggregate(values);
        let mine_started = std::time::Instant::now();
        let (patterns, stats) = self
            .miner
            .mine(&partition, pivot, self.ctx.space(), &self.params);
        publish_mine(pivot, &stats, mine_started.elapsed());
        {
            let mut guard = self.stats.lock().expect("stats lock");
            guard.0.absorb(stats);
            guard.1 += 1;
        }
        for (pattern, frequency) in patterns {
            out.push((pattern, frequency));
        }
    }

    fn encode_key(&self, key: &u32, buf: &mut Vec<u8>) {
        super::encode_u32_key(*key, buf);
    }
    fn decode_key(&self, bytes: &[u8]) -> u32 {
        super::decode_u32_key(bytes)
    }
    fn encode_value(&self, value: &(Vec<u32>, u64), buf: &mut Vec<u8>) {
        super::encode_weighted_seq(&value.0, value.1, buf);
    }
    fn decode_value(&self, bytes: &[u8]) -> (Vec<u32>, u64) {
        super::decode_weighted_seq(bytes)
    }
}

/// Runs the partition-and-mine job over a sharded corpus, one map task per
/// shard.
fn run_partition_and_mine_sharded<C: ShardedCorpus>(
    corpus: &C,
    ctx: &MiningContext,
    params: &GsmParams,
    config: &LashConfig,
) -> Result<(PatternSet, JobMetrics, MinerStats, u64)> {
    // A rank-encoded corpus whose sealed order matches this context's order
    // item-for-item lets map tasks consume stored bytes as ranks directly.
    // The orders agree whenever both came from the same corpus-wide f-list
    // (the sort is σ-independent); a mismatch — say a corpus sealed before
    // later generations shifted frequencies — just falls back to ranking on
    // the fly, never to wrong output.
    let ranked_scan = corpus.rank_order().is_some_and(|item_of| {
        item_of.len() == ctx.order().len()
            && item_of
                .iter()
                .enumerate()
                .all(|(rank, &item)| ctx.order().item(rank as u32).as_u32() == item)
    });
    let job = ShardedLashJob {
        corpus,
        ctx,
        params: *params,
        rewrite_level: config.rewrite_level,
        aggregate: config.aggregate,
        ranked_scan,
        miner: config.miner.instantiate(),
        stats: Mutex::new((MinerStats::default(), 0)),
        scan_error: Mutex::new(None),
    };
    let inputs: Vec<u32> = (0..corpus.num_shards() as u32).collect();
    // One shard per map task (see compute_flist_sharded for rationale).
    let cluster = {
        let mut c = config.cluster.clone();
        c.split_size = 1;
        c
    };
    let result = run_job(&job, &inputs, &cluster).map_err(|e| Error::Engine(e.to_string()))?;
    if let Some(e) = job.scan_error.into_inner().expect("scan error lock") {
        return Err(e);
    }
    let (miner_stats, partitions) = *job.stats.lock().expect("stats lock");
    Ok((
        PatternSet::from_pairs(result.outputs),
        result.metrics,
        miner_stats,
        partitions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2_context, named_patterns};
    use lash_mapreduce::{FailurePlan, Phase};

    /// The paper's full GSM output for the running example (Sec. 2).
    fn paper_output() -> PatternSet {
        let ctx = fig2_context();
        named_patterns(
            &ctx,
            &[
                ("a a", 2),
                ("a b1", 2),
                ("b1 a", 2),
                ("a B", 3),
                ("B a", 2),
                ("a B c", 2),
                ("B c", 2),
                ("a c", 2),
                ("b1 D", 2),
                ("B D", 2),
            ],
        )
    }

    #[test]
    fn end_to_end_reproduces_paper_output() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let lash = Lash::new(LashConfig::new(EngineConfig::default().with_split_size(2)));
        let result = lash.mine(&db, &vocab, &params).unwrap();
        let want = paper_output();
        assert_eq!(
            result.pattern_set(),
            &want,
            "diff: {:?}",
            result.pattern_set().diff(&want)
        );
        // Five partitions are mined (P_a, P_B, P_b1, P_c, P_D).
        assert_eq!(result.num_partitions, 5);
        assert!(result.miner_stats.outputs >= 10);
        // Patterns are sorted by descending frequency.
        let freqs: Vec<u64> = result.patterns().iter().map(|p| p.frequency).collect();
        assert!(freqs.windows(2).all(|w| w[0] >= w[1]));
        // Decoding round-trips through names.
        let ab = result.patterns().iter().find(|p| p.frequency == 3).unwrap();
        assert_eq!(ab.to_names(&vocab), ["a", "B"]);
    }

    #[test]
    fn all_miners_agree_end_to_end() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let want = paper_output();
        for miner in [
            MinerKind::Naive,
            MinerKind::Bfs,
            MinerKind::Dfs,
            MinerKind::Psm,
            MinerKind::PsmIndexed,
        ] {
            let lash = Lash::new(
                LashConfig::new(EngineConfig::default().with_split_size(3)).with_miner(miner),
            );
            let result = lash.mine(&db, &vocab, &params).unwrap();
            assert_eq!(result.pattern_set(), &want, "miner {}", miner.name());
        }
    }

    #[test]
    fn all_rewrite_levels_agree_end_to_end() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let want = paper_output();
        for level in [
            RewriteLevel::None,
            RewriteLevel::GeneralizeOnly,
            RewriteLevel::Full,
        ] {
            let lash = Lash::new(
                LashConfig::new(EngineConfig::default().with_split_size(2))
                    .with_rewrite_level(level),
            );
            let result = lash.mine(&db, &vocab, &params).unwrap();
            assert_eq!(result.pattern_set(), &want, "level {level:?}");
        }
    }

    #[test]
    fn full_rewrites_shrink_the_shuffle() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let cluster = EngineConfig::default().with_split_size(2);
        let bytes = |level: RewriteLevel| {
            Lash::new(LashConfig::new(cluster.clone()).with_rewrite_level(level))
                .mine(&db, &vocab, &params)
                .unwrap()
                .mine_metrics
                .counters
                .map_output_bytes
        };
        let none = bytes(RewriteLevel::None);
        let full = bytes(RewriteLevel::Full);
        assert!(full < none, "full {full} vs none {none}");
    }

    #[test]
    fn aggregation_toggle_preserves_output() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let cluster = EngineConfig::default().with_split_size(6);
        let with_agg = Lash::new(LashConfig::new(cluster.clone()).with_aggregation(true))
            .mine(&db, &vocab, &params)
            .unwrap();
        let without = Lash::new(LashConfig::new(cluster).with_aggregation(false))
            .mine(&db, &vocab, &params)
            .unwrap();
        assert_eq!(with_agg.pattern_set(), without.pattern_set());
        // With all six sequences in one split, P_B's duplicate "aB" rewrites
        // aggregate: fewer shuffled records.
        assert!(
            with_agg.mine_metrics.counters.map_output_materialized_bytes
                <= without.mine_metrics.counters.map_output_materialized_bytes
        );
    }

    #[test]
    fn parallelism_does_not_change_results() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let want = paper_output();
        for par in [1, 2, 8] {
            let lash = Lash::new(LashConfig::new(
                EngineConfig::default()
                    .with_parallelism(par)
                    .with_split_size(1)
                    .with_reduce_tasks(par * 2),
            ));
            let result = lash.mine(&db, &vocab, &params).unwrap();
            assert_eq!(result.pattern_set(), &want, "parallelism {par}");
        }
    }

    #[test]
    fn survives_task_failures() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let plan = FailurePlan::none()
            .fail_once(Phase::Map, 0)
            .fail_n_times(Phase::Reduce, 1, 2);
        let lash = Lash::new(LashConfig::new(
            EngineConfig::default()
                .with_split_size(2)
                .with_reduce_tasks(4)
                .with_failures(plan),
        ));
        let result = lash.mine(&db, &vocab, &params).unwrap();
        assert_eq!(result.pattern_set(), &paper_output());
        // Failures occurred in both jobs' phases... at least in the mine job.
        let c = &result.mine_metrics.counters;
        assert_eq!(
            c.failed_map_tasks + result.preprocess_metrics.counters.failed_map_tasks,
            2
        );
    }

    #[test]
    fn sigma_one_mines_everything_consistently() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(1, 0, 2).unwrap();
        let lash = Lash::new(LashConfig::new(EngineConfig::default().with_split_size(2)));
        let result = lash.mine(&db, &vocab, &params).unwrap();
        // Ground truth via the naive distributed baseline.
        let ctx = crate::context::MiningContext::build(&db, &vocab, 1);
        let (naive, _) = super::super::naive_job::run_naive(
            &ctx,
            &params,
            &EngineConfig::default().with_split_size(2),
        )
        .unwrap();
        assert_eq!(result.pattern_set(), &naive);
    }

    #[test]
    fn lash_agrees_with_naive_and_semi_naive_baselines() {
        let (vocab, db) = fig1();
        let cluster = EngineConfig::default().with_split_size(2);
        for (sigma, gamma, lambda) in [(2, 1, 3), (2, 0, 3), (3, 1, 4), (2, 2, 2)] {
            let params = GsmParams::new(sigma, gamma, lambda).unwrap();
            let lash = Lash::new(LashConfig::new(cluster.clone()))
                .mine(&db, &vocab, &params)
                .unwrap();
            let ctx = crate::context::MiningContext::build(&db, &vocab, sigma);
            let (naive, _) = super::super::naive_job::run_naive(&ctx, &params, &cluster).unwrap();
            let (semi, _) =
                super::super::semi_naive_job::run_semi_naive(&ctx, &params, &cluster).unwrap();
            assert_eq!(
                lash.pattern_set(),
                &naive,
                "naive σ={sigma} γ={gamma} λ={lambda}"
            );
            assert_eq!(
                lash.pattern_set(),
                &semi,
                "semi σ={sigma} γ={gamma} λ={lambda}"
            );
        }
    }

    #[test]
    fn high_sigma_yields_empty_output() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(100, 1, 3).unwrap();
        let result = Lash::default().mine(&db, &vocab, &params).unwrap();
        assert!(result.pattern_set().is_empty());
        assert_eq!(result.num_partitions, 0);
    }

    #[test]
    fn sharded_pipeline_matches_sequence_granularity() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let want = paper_output();
        let result = Lash::default()
            .mine_sharded(&db, &vocab, &params, None)
            .unwrap();
        assert_eq!(
            result.pattern_set(),
            &want,
            "diff: {:?}",
            result.pattern_set().diff(&want)
        );
        assert_eq!(result.num_partitions, 5);
        // A precomputed f-list short-circuits preprocessing entirely.
        let flist = crate::flist::FList::compute(&db, &vocab);
        let result = Lash::default()
            .mine_sharded(&db, &vocab, &params, Some(flist))
            .unwrap();
        assert_eq!(result.pattern_set(), &want);
        assert_eq!(result.preprocess_metrics.counters.map_input_records, 0);
    }

    #[test]
    fn sharded_pipeline_ignores_stale_flist_without_hierarchy() {
        let (vocab, db) = fig1();
        let params = GsmParams::new(2, 1, 3).unwrap();
        // A hierarchy-closed f-list must not leak into flat mining.
        let closed = crate::flist::FList::compute(&db, &vocab);
        let flat = Lash::new(LashConfig::default().with_hierarchy(false))
            .mine_sharded(&db, &vocab, &params, Some(closed))
            .unwrap();
        let want = Lash::new(LashConfig::default().with_hierarchy(false))
            .mine(&db, &vocab, &params)
            .unwrap();
        assert_eq!(flat.pattern_set(), want.pattern_set());
    }

    #[test]
    fn miner_kind_names() {
        assert_eq!(MinerKind::default().name(), "PSM+Index");
        assert_eq!(MinerKind::Bfs.name(), "BFS");
        assert_eq!(MinerKind::Naive.instantiate().name(), "Naive");
    }
}
