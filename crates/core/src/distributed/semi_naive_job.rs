//! The semi-naive baseline (paper Sec. 3.3): the naive algorithm with
//! f-list-based pruning.
//!
//! Before enumeration, each item is generalized to its closest frequent
//! ancestor (or replaced by a blank if none exists); blanks are never part of
//! an emitted subsequence but still occupy gap positions. Since frequent
//! sequences cannot contain infrequent items (support monotonicity, Lemma 1),
//! the result is identical to naive — with far fewer emitted candidates when
//! σ prunes a large part of the vocabulary.

use lash_mapreduce::{run_job, Emitter, EngineConfig, Job, JobMetrics};

use crate::context::MiningContext;
use crate::enumeration::enumerate_gl;
use crate::error::{Error, Result};
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::BLANK;

/// The semi-naive mining job over a preprocessed (rank-encoded) database.
pub struct SemiNaiveJob<'a> {
    ctx: &'a MiningContext,
    params: GsmParams,
}

impl Job for SemiNaiveJob<'_> {
    type Input = u32;
    type Key = Vec<u32>;
    type Value = u64;
    type Output = (Vec<u32>, u64);

    fn map(&self, &idx: &u32, emit: &mut Emitter<'_, Self>) {
        let space = self.ctx.space();
        // Generalize infrequent items to their closest frequent ancestor;
        // items without one become blanks (paper's T4 → b1 a ␣ a example).
        let rewritten: Vec<u32> = self
            .ctx
            .ranked_seq(idx as usize)
            .iter()
            .map(|&t| {
                if t == BLANK {
                    BLANK
                } else {
                    space.closest_frequent(t).unwrap_or(BLANK)
                }
            })
            .collect();
        for sub in enumerate_gl(&rewritten, space, self.params.gamma, self.params.lambda) {
            emit.emit(sub, 1);
        }
    }

    fn combine(&self, _key: &Vec<u32>, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn reduce(
        &self,
        key: Vec<u32>,
        values: impl Iterator<Item = u64>,
        out: &mut Vec<(Vec<u32>, u64)>,
    ) {
        let frequency: u64 = values.sum();
        if frequency >= self.params.sigma {
            out.push((key, frequency));
        }
    }

    fn encode_key(&self, key: &Vec<u32>, buf: &mut Vec<u8>) {
        super::encode_pattern_key(key, buf);
    }
    fn decode_key(&self, bytes: &[u8]) -> Vec<u32> {
        super::decode_pattern_key(bytes)
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        super::encode_count(*value, buf);
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        super::decode_count(bytes)
    }
}

/// Runs the semi-naive baseline over a prepared context.
pub fn run_semi_naive(
    ctx: &MiningContext,
    params: &GsmParams,
    cluster: &EngineConfig,
) -> Result<(PatternSet, JobMetrics)> {
    let job = SemiNaiveJob {
        ctx,
        params: *params,
    };
    let inputs: Vec<u32> = (0..ctx.ranked_db().len() as u32).collect();
    let result = run_job(&job, &inputs, cluster).map_err(|e| Error::Engine(e.to_string()))?;
    Ok((PatternSet::from_pairs(result.outputs), result.metrics))
}

#[cfg(test)]
mod tests {
    use super::super::naive_job::run_naive;
    use super::*;
    use crate::enumeration::enumerate_gl;
    use crate::testutil::fig2_context;

    #[test]
    fn semi_naive_matches_naive_exactly() {
        let ctx = fig2_context();
        let cluster = EngineConfig::default().with_split_size(3);
        for (sigma, gamma, lambda) in [(2, 1, 3), (2, 0, 3), (3, 1, 2), (1, 2, 4)] {
            let params = GsmParams::new(sigma, gamma, lambda).unwrap();
            // The context (and thus the f-list cutoff) depends on σ.
            let mc =
                crate::context::MiningContext::build(&crate::testutil::fig1().1, &ctx.vocab, sigma);
            let (naive, _) = run_naive(&mc, &params, &cluster).unwrap();
            let (semi, _) = run_semi_naive(&mc, &params, &cluster).unwrap();
            assert_eq!(
                naive,
                semi,
                "σ={sigma} γ={gamma} λ={lambda}: {:?}",
                naive.diff(&semi)
            );
        }
    }

    #[test]
    fn semi_naive_emits_fewer_candidates() {
        // Paper Sec. 3.3: for T4 = b11 a e a (γ=1, λ=3) the semi-naive map
        // emits exactly {aa, b1a, b1aa, Ba, Baa} — 5 vs naive's 19.
        let ctx = fig2_context();
        let space = ctx.space();
        let t4 = ctx.ranked_seq(3);
        let naive_count = enumerate_gl(t4, space, 1, 3).len();
        let rewritten: Vec<u32> = t4
            .iter()
            .map(|&t| space.closest_frequent(t).unwrap_or(BLANK))
            .collect();
        let semi = enumerate_gl(&rewritten, space, 1, 3);
        let expected = crate::testutil::named_set(&ctx, &["a a", "b1 a", "b1 a a", "B a", "B a a"]);
        assert_eq!(semi, expected);
        assert_eq!(naive_count, 19);
        assert!(semi.len() * 3 < naive_count, "reduction factor > 3");
    }
}
