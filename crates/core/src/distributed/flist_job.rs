//! The distributed generalized f-list job (paper Sec. 3.3).
//!
//! Maps over input sequences, emitting `(w', 1)` for every item in `G1(T)` —
//! the distinct items of `T` plus all their ancestors; the combiner and
//! reducer sum counts. A single job of this shape computes `f0(w, D)` for
//! every item.
//!
//! Two input granularities exist: [`compute_flist_distributed`] maps over
//! the sequences of an in-memory database, while [`compute_flist_sharded`]
//! maps over the *shards* of any [`ShardedCorpus`] — each map task streams
//! one shard, so an on-disk corpus is scanned in parallel without loading it.

use std::sync::Mutex;

use lash_mapreduce::{run_job, Emitter, EngineConfig, Job, JobMetrics};

use crate::enumeration::g1_items;
use crate::error::{Error, Result};
use crate::flist::FList;
use crate::sequence::{SequenceDatabase, ShardedCorpus};
use crate::vocabulary::{ItemId, Vocabulary};

/// The f-list MapReduce job. Inputs are sequence indices into a shared
/// database reference.
pub struct FListJob<'a> {
    db: &'a SequenceDatabase,
    vocab: &'a Vocabulary,
}

impl Job for FListJob<'_> {
    type Input = u32;
    type Key = u32;
    type Value = u64;
    type Output = (u32, u64);

    fn map(&self, &idx: &u32, emit: &mut Emitter<'_, Self>) {
        let mut items = Vec::new();
        g1_items(self.db.get(idx as usize), self.vocab, &mut items);
        for item in items {
            emit.emit(item.as_u32(), 1);
        }
    }

    fn combine(&self, _key: &u32, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn reduce(&self, key: u32, values: impl Iterator<Item = u64>, out: &mut Vec<(u32, u64)>) {
        out.push((key, values.sum()));
    }

    fn encode_key(&self, key: &u32, buf: &mut Vec<u8>) {
        super::encode_u32_key(*key, buf);
    }
    fn decode_key(&self, bytes: &[u8]) -> u32 {
        super::decode_u32_key(bytes)
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        super::encode_count(*value, buf);
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        super::decode_count(bytes)
    }
}

/// Runs the f-list job and assembles the [`FList`].
pub fn compute_flist_distributed(
    db: &SequenceDatabase,
    vocab: &Vocabulary,
    config: &EngineConfig,
) -> Result<(FList, JobMetrics)> {
    let _span = lash_obs::span!("mine.flist", sequences = db.len());
    let job = FListJob { db, vocab };
    let inputs: Vec<u32> = (0..db.len() as u32).collect();
    let result = run_job(&job, &inputs, config).map_err(|e| Error::Engine(e.to_string()))?;
    let flist = FList::from_counts(
        vocab,
        result
            .outputs
            .into_iter()
            .map(|(id, f)| (ItemId::from_u32(id), f)),
    )?;
    Ok((flist, result.metrics))
}

/// The f-list job at shard granularity: one map task per shard of a
/// [`ShardedCorpus`]. The emitted pairs, the combiner, and the reducer are
/// identical to [`FListJob`]; only the scan driving the map side differs.
struct ShardedFListJob<'a, C> {
    corpus: &'a C,
    vocab: &'a Vocabulary,
    scan_error: Mutex<Option<Error>>,
}

impl<C: ShardedCorpus> Job for ShardedFListJob<'_, C> {
    type Input = u32;
    type Key = u32;
    type Value = u64;
    type Output = (u32, u64);

    fn map(&self, &shard: &u32, emit: &mut Emitter<'_, Self>) {
        let mut items = Vec::new();
        let result = self.corpus.scan_shard(shard as usize, &mut |_, seq| {
            g1_items(seq, self.vocab, &mut items);
            for item in &items {
                emit.emit(item.as_u32(), 1);
            }
        });
        if let Err(e) = result {
            self.scan_error
                .lock()
                .expect("scan error lock")
                .get_or_insert(e);
        }
    }

    fn combine(&self, _key: &u32, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn reduce(&self, key: u32, values: impl Iterator<Item = u64>, out: &mut Vec<(u32, u64)>) {
        out.push((key, values.sum()));
    }

    fn encode_key(&self, key: &u32, buf: &mut Vec<u8>) {
        super::encode_u32_key(*key, buf);
    }
    fn decode_key(&self, bytes: &[u8]) -> u32 {
        super::decode_u32_key(bytes)
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        super::encode_count(*value, buf);
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        super::decode_count(bytes)
    }
}

/// Runs the f-list job over a sharded corpus, one map task per shard.
pub fn compute_flist_sharded<C: ShardedCorpus>(
    corpus: &C,
    vocab: &Vocabulary,
    config: &EngineConfig,
) -> Result<(FList, JobMetrics)> {
    let _span = lash_obs::span!("mine.flist", shards = corpus.num_shards());
    let job = ShardedFListJob {
        corpus,
        vocab,
        scan_error: Mutex::new(None),
    };
    let inputs: Vec<u32> = (0..corpus.num_shards() as u32).collect();
    // One shard per map task: splitting shards further is impossible, and
    // grouping them would serialize independent scans.
    let config = {
        let mut c = config.clone();
        c.split_size = 1;
        c
    };
    let result = run_job(&job, &inputs, &config).map_err(|e| Error::Engine(e.to_string()))?;
    if let Some(e) = job.scan_error.into_inner().expect("scan error lock") {
        return Err(e);
    }
    let flist = FList::from_counts(
        vocab,
        result
            .outputs
            .into_iter()
            .map(|(id, f)| (ItemId::from_u32(id), f)),
    )?;
    Ok((flist, result.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1;

    #[test]
    fn sharded_flist_matches_sequential_on_a_database() {
        let (vocab, db) = fig1();
        let sequential = FList::compute(&db, &vocab);
        let config = EngineConfig::default().with_reduce_tasks(3);
        let (sharded, metrics) = compute_flist_sharded(&db, &vocab, &config).unwrap();
        assert_eq!(sharded, sequential);
        // The whole database is one shard, hence one map input record.
        assert_eq!(metrics.counters.map_input_records, 1);
    }

    #[test]
    fn distributed_flist_matches_sequential() {
        let (vocab, db) = fig1();
        let sequential = FList::compute(&db, &vocab);
        for par in [1, 4] {
            let config = EngineConfig::default()
                .with_parallelism(par)
                .with_split_size(2)
                .with_reduce_tasks(3);
            let (distributed, metrics) = compute_flist_distributed(&db, &vocab, &config).unwrap();
            assert_eq!(distributed, sequential, "parallelism {par}");
            assert_eq!(metrics.counters.map_input_records, 6);
            assert!(metrics.counters.map_output_bytes > 0);
        }
    }

    #[test]
    fn survives_injected_failures() {
        use lash_mapreduce::{FailurePlan, Phase};
        let (vocab, db) = fig1();
        let sequential = FList::compute(&db, &vocab);
        let config = EngineConfig::default()
            .with_split_size(2)
            .with_reduce_tasks(2)
            .with_failures(
                FailurePlan::none()
                    .fail_once(Phase::Map, 1)
                    .fail_once(Phase::Reduce, 0),
            );
        let (distributed, metrics) = compute_flist_distributed(&db, &vocab, &config).unwrap();
        assert_eq!(distributed, sequential);
        assert_eq!(metrics.counters.failed_map_tasks, 1);
        assert_eq!(metrics.counters.failed_reduce_tasks, 1);
    }
}
