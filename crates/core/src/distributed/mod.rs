//! The distributed pipelines, expressed as jobs on [`lash_mapreduce`].
//!
//! * [`flist_job`] — the preprocessing job computing the generalized f-list
//!   (paper Sec. 3.3);
//! * [`lash_job`] — the LASH partition-and-mine job (Alg. 1) and the public
//!   [`Lash`](lash_job::Lash) driver;
//! * [`naive_job`] / [`semi_naive_job`] — the word-count-style baselines
//!   (Secs. 3.2, 3.3);
//! * [`mgfsm`] — MG-FSM, i.e. item-based partitioning without hierarchies
//!   (Sec. 6.3, footnote 3).
//!
//! All jobs serialize their intermediate data through [`lash_encoding`]'s
//! varint/sequence codecs, so the engine's `MAP_OUTPUT_BYTES` counter measures
//! the representation the paper measures.

pub mod flist_job;
pub mod lash_job;
pub mod mgfsm;
pub mod naive_job;
pub mod semi_naive_job;

use lash_encoding::varint;

/// Encodes a `u32` key (item rank or raw id) as a varint.
pub(crate) fn encode_u32_key(key: u32, buf: &mut Vec<u8>) {
    varint::encode_u32(key, buf);
}

/// Decodes a `u32` key.
pub(crate) fn decode_u32_key(bytes: &[u8]) -> u32 {
    varint::decode_u32(bytes).expect("valid u32 key").0
}

/// Encodes a `u64` count value as a varint.
pub(crate) fn encode_count(count: u64, buf: &mut Vec<u8>) {
    varint::encode_u64(count, buf);
}

/// Decodes a `u64` count value.
pub(crate) fn decode_count(bytes: &[u8]) -> u64 {
    varint::decode_u64(bytes).expect("valid count").0
}

/// Encodes a (sequence, weight) value: varint weight, then the sequence in
/// the blank-aware wire format.
pub(crate) fn encode_weighted_seq(seq: &[u32], weight: u64, buf: &mut Vec<u8>) {
    varint::encode_u64(weight, buf);
    lash_encoding::encode_sequence(seq, buf);
}

/// Decodes a (sequence, weight) value.
pub(crate) fn decode_weighted_seq(bytes: &[u8]) -> (Vec<u32>, u64) {
    let (weight, n) = varint::decode_u64(bytes).expect("valid weight");
    let seq = lash_encoding::decode_sequence(&bytes[n..]).expect("valid sequence");
    (seq, weight)
}

/// Encodes a pattern key (a blank-free rank sequence).
pub(crate) fn encode_pattern_key(pattern: &[u32], buf: &mut Vec<u8>) {
    lash_encoding::encode_sequence(pattern, buf);
}

/// Decodes a pattern key.
pub(crate) fn decode_pattern_key(bytes: &[u8]) -> Vec<u32> {
    lash_encoding::decode_sequence(bytes).expect("valid pattern key")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_and_count_round_trips() {
        let mut buf = Vec::new();
        encode_u32_key(12345, &mut buf);
        assert_eq!(decode_u32_key(&buf), 12345);
        buf.clear();
        encode_count(u64::MAX, &mut buf);
        assert_eq!(decode_count(&buf), u64::MAX);
    }

    #[test]
    fn weighted_seq_round_trips() {
        let mut buf = Vec::new();
        let seq = vec![0u32, crate::BLANK, 7];
        encode_weighted_seq(&seq, 42, &mut buf);
        let (s, w) = decode_weighted_seq(&buf);
        assert_eq!(s, seq);
        assert_eq!(w, 42);
    }

    #[test]
    fn pattern_key_round_trips() {
        let mut buf = Vec::new();
        encode_pattern_key(&[3, 1, 4, 1, 5], &mut buf);
        assert_eq!(decode_pattern_key(&buf), vec![3, 1, 4, 1, 5]);
    }
}
