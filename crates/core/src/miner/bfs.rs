//! Hierarchy-aware BFS miner (SPADE-style, paper Sec. 5.1).
//!
//! Level-wise candidate-generation-and-test over a vertical representation:
//!
//! 1. scan the partition once, adding each sequence to the posting list of
//!    every length-2 generalized subsequence in `G2(T)` — this is the only
//!    hierarchy-specific change to SPADE;
//! 2. to grow from level `l` to `l+1`, join frequent `l`-sequences sharing an
//!    `(l-1)`-infix (`S1[1..] = S2[..l-1]`), intersect their posting lists,
//!    and verify the gap-constrained containment on the intersection.
//!
//! Like DFS, BFS mines *all* locally frequent sequences and filters to pivot
//! sequences at the end; unlike the pattern-growth miners it materializes
//! whole levels, which is what makes it run out of memory on the paper's
//! CLP(100, 0, 7) setting.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::hierarchy::ItemSpace;
use crate::matching::matches;
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::sequence::Partition;
use crate::BLANK;

use super::{LocalMiner, MinerStats};

/// The SPADE-style miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsMiner;

/// A frequent sequence with its posting list (sorted sequence indices).
struct Entry {
    seq: Vec<u32>,
    postings: Vec<u32>,
    frequency: u64,
}

impl LocalMiner for BfsMiner {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn mine(
        &self,
        partition: &Partition,
        pivot: u32,
        space: &ItemSpace,
        params: &GsmParams,
    ) -> (PatternSet, MinerStats) {
        let mut stats = MinerStats::default();
        let mut out = PatternSet::new();

        // Level 2: vertical index over G2(T).
        let mut postings: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
        let mut per_seq: FxHashSet<Vec<u32>> = FxHashSet::default();
        for (idx, ws) in partition.sequences.iter().enumerate() {
            stats.expansions += 1;
            per_seq.clear();
            let items = &ws.items;
            for i in 0..items.len() {
                if items[i] == BLANK {
                    continue;
                }
                let jmax = (i + 1 + params.gamma).min(items.len().saturating_sub(1));
                for j in i + 1..=jmax {
                    if items[j] == BLANK {
                        continue;
                    }
                    for &u in space.chain(items[i]) {
                        if u > pivot {
                            continue;
                        }
                        for &v in space.chain(items[j]) {
                            if v > pivot {
                                continue;
                            }
                            per_seq.insert(vec![u, v]);
                        }
                    }
                }
            }
            for key in per_seq.drain() {
                postings.entry(key).or_default().push(idx as u32);
            }
        }
        stats.candidates += postings.len() as u64;

        let weight_of = |list: &[u32]| -> u64 {
            list.iter()
                .map(|&i| partition.sequences[i as usize].weight)
                .sum()
        };

        let mut level: Vec<Entry> = postings
            .into_iter()
            .filter_map(|(seq, postings)| {
                let frequency = weight_of(&postings);
                (frequency >= params.sigma).then_some(Entry {
                    seq,
                    postings,
                    frequency,
                })
            })
            .collect();
        level.sort_unstable_by(|a, b| a.seq.cmp(&b.seq));

        for entry in &level {
            if entry.seq.iter().copied().max() == Some(pivot) {
                out.insert(entry.seq.clone(), entry.frequency);
            }
        }

        // Levels 3..λ: prefix/suffix joins.
        let obs = lash_obs::global();
        let mut len = 2usize;
        while len < params.lambda && !level.is_empty() {
            let level_started = std::time::Instant::now();
            // Bucket level-l sequences by their (l-1)-prefix for the join.
            let mut by_prefix: FxHashMap<&[u32], Vec<usize>> = FxHashMap::default();
            for (i, e) in level.iter().enumerate() {
                by_prefix.entry(&e.seq[..len - 1]).or_default().push(i);
            }
            let mut next: Vec<Entry> = Vec::new();
            for s1 in &level {
                let Some(bucket) = by_prefix.get(&s1.seq[1..]) else {
                    continue;
                };
                for &j in bucket {
                    let s2 = &level[j];
                    stats.candidates += 1;
                    stats.expansions += 1;
                    let mut candidate = Vec::with_capacity(len + 1);
                    candidate.extend_from_slice(&s1.seq);
                    candidate.push(*s2.seq.last().expect("non-empty"));
                    // Intersect posting lists, verifying the full containment
                    // (the intersection over-approximates support under gaps).
                    let mut verified = Vec::new();
                    let (mut a, mut b) = (0usize, 0usize);
                    while a < s1.postings.len() && b < s2.postings.len() {
                        match s1.postings[a].cmp(&s2.postings[b]) {
                            std::cmp::Ordering::Less => a += 1,
                            std::cmp::Ordering::Greater => b += 1,
                            std::cmp::Ordering::Equal => {
                                let sidx = s1.postings[a];
                                let ws = &partition.sequences[sidx as usize];
                                if matches(&candidate, &ws.items, space, params.gamma) {
                                    verified.push(sidx);
                                }
                                a += 1;
                                b += 1;
                            }
                        }
                    }
                    let frequency = weight_of(&verified);
                    if frequency >= params.sigma {
                        if candidate.iter().copied().max() == Some(pivot) {
                            out.insert(candidate.clone(), frequency);
                        }
                        next.push(Entry {
                            seq: candidate,
                            postings: verified,
                            frequency,
                        });
                    }
                }
            }
            next.sort_unstable_by(|x, y| x.seq.cmp(&y.seq));
            level = next;
            len += 1;
            obs.observe_span(
                "mine.bfs.level",
                level_started.elapsed(),
                &[("level", len.into()), ("survivors", level.len().into())],
            );
        }

        stats.outputs = out.len() as u64;
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::minertests::{
        check_aggregation_invariance, check_fig2_outputs, fig2_partition,
    };
    use super::super::NaiveMiner;
    use super::*;
    use crate::testutil::fig2_context;

    #[test]
    fn reproduces_fig2_partition_outputs() {
        check_fig2_outputs(&BfsMiner);
    }

    #[test]
    fn aggregation_invariant() {
        check_aggregation_invariance(&BfsMiner);
    }

    #[test]
    fn agrees_with_naive_across_parameters() {
        let ctx = fig2_context();
        let space = ctx.space();
        for gamma in 0..3 {
            for lambda in 2..5 {
                let params = GsmParams::new(2, gamma, lambda).unwrap();
                for pivot in ["a", "B", "b1", "c", "D"] {
                    let partition = fig2_partition(&ctx, pivot, &params);
                    let p = ctx.rank(pivot);
                    let (naive, _) = NaiveMiner.mine(&partition, p, space, &params);
                    let (bfs, _) = BfsMiner.mine(&partition, p, space, &params);
                    assert_eq!(
                        naive,
                        bfs,
                        "pivot {pivot} γ={gamma} λ={lambda}: {:?}",
                        naive.diff(&bfs)
                    );
                }
            }
        }
    }

    #[test]
    fn gap_constraints_verified_not_assumed() {
        // The 2-sequence index alone would claim "c a" is supported (c@1,
        // a@3) at γ=0; verification must reject non-contiguous embeddings.
        // Pivot is c (the largest item of the sequence under the Fig. 2
        // order: a < B < b1 < c).
        let ctx = fig2_context();
        let space = ctx.space();
        let a = ctx.rank("a");
        let c = ctx.rank("c");
        let b1 = ctx.rank("b1");
        let b_cap = ctx.rank("B");
        let params = GsmParams::new(1, 0, 3).unwrap();
        let partition = Partition {
            sequences: vec![crate::sequence::WeightedSequence::new(vec![a, c, b1, a], 1)],
        };
        let (got, _) = BfsMiner.mine(&partition, c, space, &params);
        assert!(got.contains(&[a, c, b1]));
        assert!(got.contains(&[a, c, b_cap])); // hierarchy-aware level-2 index
        assert!(got.contains(&[c, b1]));
        assert!(got.contains(&[c, b1, a]));
        assert!(!got.contains(&[c, a])); // gap 1 > γ=0
        assert!(!got.contains(&[a, c, b1, a])); // λ = 3
    }

    #[test]
    fn empty_partition_is_fine() {
        let ctx = fig2_context();
        let params = GsmParams::new(1, 0, 3).unwrap();
        let (got, stats) = BfsMiner.mine(&Partition::new(), 0, ctx.space(), &params);
        assert!(got.is_empty());
        assert_eq!(stats.outputs, 0);
    }
}
