//! Shared pattern-growth machinery: projected databases with embedding
//! windows, extension counting, and projection.
//!
//! A pattern's *projected database* holds, per supporting partition sequence,
//! the set of embedding windows `(start, end)`. Right (left) expansion looks
//! at the γ+1 positions after `end` (before `start`), proposing the items
//! found there together with all their generalizations.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::hierarchy::ItemSpace;
use crate::sequence::Partition;
use crate::BLANK;

/// Expansion direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dir {
    /// Extend the pattern on the right (after `end`).
    Right,
    /// Extend the pattern on the left (before `start`).
    Left,
}

/// One supporting sequence with its embedding windows.
#[derive(Debug, Clone)]
pub(crate) struct ProjEntry {
    /// Index into `partition.sequences`.
    pub seq: u32,
    /// Distinct `(start, end)` windows, sorted.
    pub embs: Vec<(u32, u32)>,
}

/// A projected database.
#[derive(Debug, Clone, Default)]
pub(crate) struct Projection {
    pub entries: Vec<ProjEntry>,
}

impl Projection {
    /// The projected database of the single-item pattern `[item]`: every
    /// position whose item generalizes to `item`.
    pub fn for_item(partition: &Partition, space: &ItemSpace, item: u32) -> Projection {
        let mut entries = Vec::new();
        for (i, ws) in partition.sequences.iter().enumerate() {
            let mut embs = Vec::new();
            for (p, &t) in ws.items.iter().enumerate() {
                if t != BLANK && space.generalizes_to(t, item) {
                    embs.push((p as u32, p as u32));
                }
            }
            if !embs.is_empty() {
                entries.push(ProjEntry {
                    seq: i as u32,
                    embs,
                });
            }
        }
        Projection { entries }
    }

    /// Total weight of supporting sequences (the pattern's frequency).
    #[cfg(test)]
    pub fn support(&self, partition: &Partition) -> u64 {
        self.entries
            .iter()
            .map(|e| partition.sequences[e.seq as usize].weight)
            .sum()
    }

    /// True if no sequence supports the pattern.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counts, per candidate extension item, the total weight of supporting
/// sequences. Only items with rank ≤ `max_item` are proposed (a pivot
/// sequence cannot contain an item larger than its pivot); `exclude` skips a
/// single item (PSM never right-expands with the pivot); when `allowed` is
/// set, only items in it are counted at all (PSM's right-expansion index:
/// "neither counting nor support set computation is performed" for pruned
/// items).
///
/// Returns the number of distinct candidate items evaluated.
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_extensions(
    proj: &Projection,
    partition: &Partition,
    space: &ItemSpace,
    gamma: usize,
    dir: Dir,
    max_item: u32,
    exclude: Option<u32>,
    allowed: Option<&FxHashSet<u32>>,
    counts: &mut FxHashMap<u32, u64>,
) -> u64 {
    counts.clear();
    let mut per_seq: FxHashSet<u32> = FxHashSet::default();
    for entry in &proj.entries {
        let ws = &partition.sequences[entry.seq as usize];
        let items = &ws.items;
        per_seq.clear();
        for &(start, end) in &entry.embs {
            each_window_position(items.len(), start, end, gamma, dir, |q| {
                let t = items[q];
                if t == BLANK {
                    return;
                }
                for &anc in space.chain(t) {
                    if anc > max_item {
                        // Chains are sorted descending after the head; the
                        // head itself may exceed max_item while ancestors
                        // do not, so keep scanning.
                        continue;
                    }
                    if Some(anc) == exclude {
                        continue;
                    }
                    if let Some(allowed) = allowed {
                        if !allowed.contains(&anc) {
                            continue;
                        }
                    }
                    per_seq.insert(anc);
                }
            });
        }
        for &item in &per_seq {
            *counts.entry(item).or_insert(0) += ws.weight;
        }
    }
    counts.len() as u64
}

/// Builds the projected database of the pattern extended with `item` in
/// direction `dir`.
pub(crate) fn project(
    proj: &Projection,
    partition: &Partition,
    space: &ItemSpace,
    gamma: usize,
    dir: Dir,
    item: u32,
) -> Projection {
    let mut entries = Vec::new();
    for entry in &proj.entries {
        let ws = &partition.sequences[entry.seq as usize];
        let items = &ws.items;
        let mut embs = Vec::new();
        for &(start, end) in &entry.embs {
            each_window_position(items.len(), start, end, gamma, dir, |q| {
                let t = items[q];
                if t != BLANK && space.generalizes_to(t, item) {
                    match dir {
                        Dir::Right => embs.push((start, q as u32)),
                        Dir::Left => embs.push((q as u32, end)),
                    }
                }
            });
        }
        if !embs.is_empty() {
            embs.sort_unstable();
            embs.dedup();
            entries.push(ProjEntry {
                seq: entry.seq,
                embs,
            });
        }
    }
    Projection { entries }
}

/// Visits the sequence positions reachable from an embedding window in the
/// given direction under the gap constraint.
#[inline]
fn each_window_position(
    len: usize,
    start: u32,
    end: u32,
    gamma: usize,
    dir: Dir,
    mut f: impl FnMut(usize),
) {
    match dir {
        Dir::Right => {
            let from = end as usize + 1;
            let to = (end as usize + 1 + gamma).min(len.saturating_sub(1));
            for q in from..=to {
                f(q);
            }
        }
        Dir::Left => {
            let to = start as usize;
            let from = to.saturating_sub(gamma + 1);
            for q in from..to {
                f(q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::WeightedSequence;
    use crate::testutil::{fig2_context, ranks};

    fn part(seqs: &[(&[u32], u64)]) -> Partition {
        Partition {
            sequences: seqs
                .iter()
                .map(|(s, w)| WeightedSequence::new(s.to_vec(), *w))
                .collect(),
        }
    }

    #[test]
    fn for_item_finds_generalized_occurrences() {
        let ctx = fig2_context();
        let space = ctx.space();
        let [a, b12] = ranks(&ctx, &["a", "b12"])[..] else {
            panic!()
        };
        let b_cap = ctx.rank("B");
        let p = part(&[(&[a, b12], 1), (&[a], 2)]);
        // B occurs (via b12) in sequence 0 only.
        let proj = Projection::for_item(&p, space, b_cap);
        assert_eq!(proj.entries.len(), 1);
        assert_eq!(proj.entries[0].embs, vec![(1, 1)]);
        assert_eq!(proj.support(&p), 1);
        // a occurs in both; weighted support 3.
        let proj = Projection::for_item(&p, space, a);
        assert_eq!(proj.support(&p), 3);
    }

    #[test]
    fn count_extensions_right_includes_generalizations() {
        let ctx = fig2_context();
        let space = ctx.space();
        let [a, b12, c] = ranks(&ctx, &["a", "b12", "c"])[..] else {
            panic!()
        };
        let [b_cap, b1] = ranks(&ctx, &["B", "b1"])[..] else {
            panic!()
        };
        let p = part(&[(&[a, b12, c], 1)]);
        let proj = Projection::for_item(&p, space, a);
        let mut counts = FxHashMap::default();
        // γ=0: only position 1 (b12) is reachable → candidates b12, b1, B.
        let evaluated = count_extensions(
            &proj,
            &p,
            space,
            0,
            Dir::Right,
            u32::MAX - 1,
            None,
            None,
            &mut counts,
        );
        assert_eq!(evaluated, 3);
        assert_eq!(counts.get(&b12), Some(&1));
        assert_eq!(counts.get(&b1), Some(&1));
        assert_eq!(counts.get(&b_cap), Some(&1));
        // With max_item = b1 the raw item b12 is filtered but ancestors stay.
        count_extensions(&proj, &p, space, 0, Dir::Right, b1, None, None, &mut counts);
        assert!(!counts.contains_key(&b12));
        assert!(counts.contains_key(&b1));
        assert!(counts.contains_key(&b_cap));
        // Excluding b1 removes exactly it.
        count_extensions(
            &proj,
            &p,
            space,
            0,
            Dir::Right,
            b1,
            Some(b1),
            None,
            &mut counts,
        );
        assert!(!counts.contains_key(&b1));
        assert!(counts.contains_key(&b_cap));
    }

    #[test]
    fn count_extensions_left_and_blank_gaps() {
        let ctx = fig2_context();
        let space = ctx.space();
        let [a, c] = ranks(&ctx, &["a", "c"])[..] else {
            panic!()
        };
        let p = part(&[(&[a, BLANK, c], 1)]);
        let proj = Projection::for_item(&p, space, c);
        let mut counts = FxHashMap::default();
        // γ=0 window covers only the blank → nothing.
        count_extensions(
            &proj,
            &p,
            space,
            0,
            Dir::Left,
            u32::MAX - 1,
            None,
            None,
            &mut counts,
        );
        assert!(counts.is_empty());
        // γ=1 reaches `a`.
        count_extensions(
            &proj,
            &p,
            space,
            1,
            Dir::Left,
            u32::MAX - 1,
            None,
            None,
            &mut counts,
        );
        assert_eq!(counts.get(&a), Some(&1));
    }

    #[test]
    fn project_right_tracks_windows() {
        let ctx = fig2_context();
        let space = ctx.space();
        let [a, b1] = ranks(&ctx, &["a", "b1"])[..] else {
            panic!()
        };
        // a b1 a b1 — project [a] by b1 (γ=1).
        let p = part(&[(&[a, b1, a, b1], 1)]);
        let proj = Projection::for_item(&p, space, a);
        assert_eq!(proj.entries[0].embs, vec![(0, 0), (2, 2)]);
        let next = project(&proj, &p, space, 1, Dir::Right, b1);
        assert_eq!(next.entries[0].embs, vec![(0, 1), (2, 3)]);
        // Further projecting by `a`: only window (0,1) can reach a@2.
        let next2 = project(&next, &p, space, 0, Dir::Right, a);
        assert_eq!(next2.entries[0].embs, vec![(0, 2)]);
    }

    #[test]
    fn project_left_tracks_windows() {
        let ctx = fig2_context();
        let space = ctx.space();
        let [a, b1] = ranks(&ctx, &["a", "b1"])[..] else {
            panic!()
        };
        let p = part(&[(&[a, b1], 1)]);
        let proj = Projection::for_item(&p, space, b1);
        let next = project(&proj, &p, space, 0, Dir::Left, a);
        assert_eq!(next.entries[0].embs, vec![(0, 1)]);
        // Nothing further to the left.
        let next2 = project(&next, &p, space, 3, Dir::Left, a);
        assert!(next2.is_empty());
    }

    #[test]
    fn per_sequence_counting_uses_weights_once() {
        let ctx = fig2_context();
        let space = ctx.space();
        let a = ctx.rank("a");
        // Two embeddings of `a` in the same sequence must count its weight once.
        let p = part(&[(&[a, a, a], 7)]);
        let proj = Projection::for_item(&p, space, a);
        let mut counts = FxHashMap::default();
        count_extensions(
            &proj,
            &p,
            space,
            2,
            Dir::Right,
            u32::MAX - 1,
            None,
            None,
            &mut counts,
        );
        assert_eq!(counts.get(&a), Some(&7));
    }
}
