//! Exhaustive local miner: enumerate `Gλ(T)` per sequence and count.
//!
//! Exponential in λ (paper Sec. 3.2) — used as the ground truth in tests and
//! as the reduce-side evaluation of the naive/semi-naive baselines.

use crate::enumeration::enumerate_gl;
use crate::fxhash::FxHashMap;
use crate::hierarchy::ItemSpace;
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::sequence::Partition;

use super::{LocalMiner, MinerStats};

/// The exhaustive enumeration miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveMiner;

impl LocalMiner for NaiveMiner {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn mine(
        &self,
        partition: &Partition,
        pivot: u32,
        space: &ItemSpace,
        params: &GsmParams,
    ) -> (PatternSet, MinerStats) {
        let mut counts: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        let mut stats = MinerStats::default();
        for ws in &partition.sequences {
            stats.expansions += 1;
            for sub in enumerate_gl(&ws.items, space, params.gamma, params.lambda) {
                *counts.entry(sub).or_insert(0) += ws.weight;
            }
        }
        stats.candidates = counts.len() as u64;
        let mut out = PatternSet::new();
        for (seq, freq) in counts {
            if freq >= params.sigma && seq.iter().copied().max() == Some(pivot) {
                out.insert(seq, freq);
            }
        }
        stats.outputs = out.len() as u64;
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::minertests::{check_aggregation_invariance, check_fig2_outputs};
    use super::*;

    #[test]
    fn reproduces_fig2_partition_outputs() {
        check_fig2_outputs(&NaiveMiner);
    }

    #[test]
    fn aggregation_invariant() {
        check_aggregation_invariance(&NaiveMiner);
    }

    #[test]
    fn empty_partition_mines_nothing() {
        let params = GsmParams::new(1, 0, 3).unwrap();
        let space = ItemSpace::flat(vec![1], 1);
        let (out, stats) = NaiveMiner.mine(&Partition::new(), 0, &space, &params);
        assert!(out.is_empty());
        assert_eq!(stats.outputs, 0);
    }
}
