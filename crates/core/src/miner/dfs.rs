//! Hierarchy-aware DFS miner (PrefixSpan-style pattern growth, paper
//! Sec. 5.1).
//!
//! Starts from every frequent item and recursively *right-expands*: for a
//! pattern `S`, the support set `D_S` is scanned for the items (and all their
//! generalizations) occurring within γ+1 positions after an embedding; each
//! frequent extension `S·w'` is output and grown further.
//!
//! In the context of LASH the DFS miner computes **all** locally frequent
//! sequences — including the non-pivot sequences that are filtered out
//! afterwards. This wasted work is intrinsic (short non-pivot prefixes like
//! `ca` contribute to longer pivot sequences like `caD`) and is what PSM
//! eliminates.

use crate::fxhash::FxHashMap;
use crate::hierarchy::ItemSpace;
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::sequence::Partition;

use super::expansion::{count_extensions, project, Dir, Projection};
use super::{LocalMiner, MinerStats};

/// The PrefixSpan-style miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct DfsMiner;

struct Run<'a> {
    partition: &'a Partition,
    space: &'a ItemSpace,
    params: &'a GsmParams,
    pivot: u32,
    out: PatternSet,
    stats: MinerStats,
}

impl Run<'_> {
    fn grow(&mut self, pattern: &mut Vec<u32>, proj: &Projection) {
        if pattern.len() == self.params.lambda {
            return;
        }
        self.stats.expansions += 1;
        let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
        // Extension items are capped at the pivot: larger items cannot occur
        // in this partition's pivot sequences, and w-generalization has
        // already removed them from the data. The cap is a no-op for fully
        // rewritten partitions but keeps the miner correct on raw data.
        self.stats.candidates += count_extensions(
            proj,
            self.partition,
            self.space,
            self.params.gamma,
            Dir::Right,
            self.pivot,
            None,
            None,
            &mut counts,
        );
        let mut frequent: Vec<u32> = counts
            .iter()
            .filter(|&(_, &f)| f >= self.params.sigma)
            .map(|(&w, _)| w)
            .collect();
        frequent.sort_unstable();
        for w in frequent {
            let next = project(
                proj,
                self.partition,
                self.space,
                self.params.gamma,
                Dir::Right,
                w,
            );
            pattern.push(w);
            if pattern.len() >= 2 && pattern.iter().copied().max() == Some(self.pivot) {
                self.out.insert(pattern.clone(), counts[&w]);
            }
            self.grow(pattern, &next);
            pattern.pop();
        }
    }
}

impl LocalMiner for DfsMiner {
    fn name(&self) -> &'static str {
        "DFS"
    }

    fn mine(
        &self,
        partition: &Partition,
        pivot: u32,
        space: &ItemSpace,
        params: &GsmParams,
    ) -> (PatternSet, MinerStats) {
        let mut run = Run {
            partition,
            space,
            params,
            pivot,
            out: PatternSet::new(),
            stats: MinerStats::default(),
        };
        // Level 1: frequent single items (counted like every other level, so
        // the search-space accounting matches the paper's Sec. 5.2 example).
        let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
        let mut per_seq: Vec<u32> = Vec::new();
        for ws in &partition.sequences {
            per_seq.clear();
            for &t in &ws.items {
                if t == crate::BLANK {
                    continue;
                }
                for &anc in space.chain(t) {
                    if anc <= pivot {
                        per_seq.push(anc);
                    }
                }
            }
            per_seq.sort_unstable();
            per_seq.dedup();
            for &w in &per_seq {
                *counts.entry(w).or_insert(0) += ws.weight;
            }
        }
        run.stats.candidates += counts.len() as u64;
        let mut frequent: Vec<u32> = counts
            .iter()
            .filter(|&(_, &f)| f >= params.sigma)
            .map(|(&w, _)| w)
            .collect();
        frequent.sort_unstable();
        let mut pattern = Vec::with_capacity(params.lambda);
        for w in frequent {
            let proj = Projection::for_item(partition, space, w);
            pattern.push(w);
            run.grow(&mut pattern, &proj);
            pattern.pop();
        }
        run.stats.outputs = run.out.len() as u64;
        (run.out, run.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::minertests::{check_aggregation_invariance, check_fig2_outputs};
    use super::super::naive::NaiveMiner;
    use super::*;
    use crate::testutil::fig2_context;

    #[test]
    fn reproduces_fig2_partition_outputs() {
        check_fig2_outputs(&DfsMiner);
    }

    #[test]
    fn aggregation_invariant() {
        check_aggregation_invariance(&DfsMiner);
    }

    #[test]
    fn agrees_with_naive_on_unrewritten_data() {
        // Mine each raw Fig. 1 sequence set as a partition for every pivot.
        let ctx = fig2_context();
        let space = ctx.space();
        for gamma in 0..2 {
            for lambda in 2..4 {
                let params = GsmParams::new(2, gamma, lambda).unwrap();
                let partition =
                    Partition::aggregate((0..6).map(|i| (ctx.ranked_seq(i).to_vec(), 1)));
                for pivot in 0..space.num_frequent() {
                    let (naive, _) = NaiveMiner.mine(&partition, pivot, space, &params);
                    let (dfs, _) = DfsMiner.mine(&partition, pivot, space, &params);
                    assert_eq!(naive, dfs, "pivot {pivot} γ={gamma} λ={lambda}");
                }
            }
        }
    }

    #[test]
    fn explores_non_pivot_candidates() {
        // DFS pays for non-pivot sequences: on P_D it evaluates candidates
        // like `ca` that PSM never touches. We just assert the accounting is
        // non-trivial.
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let partition = super::super::minertests::fig2_partition(&ctx, "D", &params);
        let (_, stats) = DfsMiner.mine(&partition, ctx.rank("D"), ctx.space(), &params);
        assert!(stats.candidates > stats.outputs);
    }
}
