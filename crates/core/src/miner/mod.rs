//! Local (per-partition) mining algorithms.
//!
//! The reduce phase of LASH runs a *generalized sequence miner* on each
//! partition `P_w` and keeps the locally frequent **pivot sequences** — the
//! sequences `S` with `p(S) = w` and `2 ≤ |S| ≤ λ` (paper Sec. 5). This module
//! provides:
//!
//! * [`NaiveMiner`] — exhaustive enumeration; the ground
//!   truth used by the test suite;
//! * [`BfsMiner`] — hierarchy-aware SPADE (level-wise
//!   candidate-generation-and-test over a vertical index, Sec. 5.1);
//! * [`DfsMiner`] — hierarchy-aware PrefixSpan (pattern-growth
//!   with right expansions, Sec. 5.1);
//! * [`PsmMiner`] — the pivot sequence miner (Sec. 5.2), which
//!   only ever enumerates pivot sequences, optionally with the
//!   right-expansion index.
//!
//! BFS and DFS mine *all* locally frequent sequences and filter to pivot
//! sequences afterwards — exactly the overhead that PSM eliminates and that
//! Fig. 4(c,d) quantifies. [`MinerStats`] exposes the search-space accounting.

pub mod bfs;
pub mod dfs;
mod expansion;
pub mod naive;
pub mod psm;

use crate::hierarchy::ItemSpace;
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::sequence::Partition;

pub use bfs::BfsMiner;
pub use dfs::DfsMiner;
pub use naive::NaiveMiner;
pub use psm::PsmMiner;

/// Search-space accounting for a local mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Candidate sequences whose support was evaluated (the paper's
    /// "#candidate sequences", Fig. 4(d)).
    pub candidates: u64,
    /// Projection/expansion steps performed (database scans for
    /// pattern-growth miners, joins for BFS).
    pub expansions: u64,
    /// Number of output (pivot) sequences.
    pub outputs: u64,
}

impl MinerStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: MinerStats) {
        self.candidates += other.candidates;
        self.expansions += other.expansions;
        self.outputs += other.outputs;
    }

    /// Candidates per output sequence (Fig. 4(d)'s y-axis); `None` when
    /// nothing was output.
    pub fn candidates_per_output(&self) -> Option<f64> {
        (self.outputs > 0).then(|| self.candidates as f64 / self.outputs as f64)
    }
}

/// A local GSM algorithm run inside a reduce task.
///
/// Implementations must return exactly the frequent pivot sequences of the
/// partition: every `S` with `p(S) = pivot`, `2 ≤ |S| ≤ λ` and
/// `f_γ(S, P_w) ≥ σ`, with exact frequencies.
pub trait LocalMiner: Send + Sync {
    /// A short display name ("BFS", "PSM", …).
    fn name(&self) -> &'static str;

    /// Mines `partition` for pivot sequences of `pivot`.
    fn mine(
        &self,
        partition: &Partition,
        pivot: u32,
        space: &ItemSpace,
        params: &GsmParams,
    ) -> (PatternSet, MinerStats);
}

#[cfg(test)]
pub(crate) mod minertests {
    //! Shared conformance tests: every miner must reproduce the paper's
    //! Fig. 2 per-partition outputs and agree with naive enumeration.

    use super::*;
    use crate::rewrite::Rewriter;
    use crate::testutil::{fig2_context, named_patterns, Fig2Context};

    /// Builds the Fig. 2 partition for `pivot` via the full rewrite pipeline.
    pub(crate) fn fig2_partition(ctx: &Fig2Context, pivot: &str, params: &GsmParams) -> Partition {
        let rw = Rewriter::new(ctx.space(), params);
        let p = ctx.rank(pivot);
        Partition::aggregate(
            (0..6)
                .filter_map(|i| rw.rewrite(ctx.ranked_seq(i), p))
                .map(|seq| (seq, 1)),
        )
    }

    /// Runs `miner` over all five Fig. 2 partitions and checks the paper's
    /// expected outputs.
    pub(crate) fn check_fig2_outputs(miner: &dyn LocalMiner) {
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let cases: &[(&str, &[(&str, u64)])] = &[
            ("a", &[("a a", 2)]),
            ("B", &[("a B", 3), ("B a", 2)]),
            ("b1", &[("a b1", 2), ("b1 a", 2)]),
            ("c", &[("B c", 2), ("a c", 2), ("a B c", 2)]),
            ("D", &[("b1 D", 2), ("B D", 2)]),
        ];
        for (pivot, expected) in cases {
            let partition = fig2_partition(&ctx, pivot, &params);
            let (got, stats) = miner.mine(&partition, ctx.rank(pivot), ctx.space(), &params);
            let want = named_patterns(&ctx, expected);
            assert_eq!(
                got,
                want,
                "{} on partition P_{pivot}: diff = {:?}",
                miner.name(),
                got.diff(&want)
            );
            assert_eq!(stats.outputs, expected.len() as u64, "{pivot} outputs");
        }
    }

    /// Aggregation must not change any miner's result: mining the aggregated
    /// partition equals mining the raw (weight-1 duplicated) partition.
    pub(crate) fn check_aggregation_invariance(miner: &dyn LocalMiner) {
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let rw = Rewriter::new(ctx.space(), &params);
        let pivot = ctx.rank("B");
        let raw: Vec<(Vec<u32>, u64)> = (0..6)
            .filter_map(|i| rw.rewrite(ctx.ranked_seq(i), pivot))
            .map(|s| (s, 1))
            .collect();
        let aggregated = Partition::aggregate(raw.clone());
        let unaggregated = Partition {
            sequences: raw
                .into_iter()
                .map(|(items, weight)| crate::sequence::WeightedSequence { items, weight })
                .collect(),
        };
        let (a, _) = miner.mine(&aggregated, pivot, ctx.space(), &params);
        let (b, _) = miner.mine(&unaggregated, pivot, ctx.space(), &params);
        assert_eq!(a, b, "{}", miner.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_and_ratio() {
        let mut a = MinerStats {
            candidates: 10,
            expansions: 3,
            outputs: 2,
        };
        a.absorb(MinerStats {
            candidates: 5,
            expansions: 1,
            outputs: 3,
        });
        assert_eq!(a.candidates, 15);
        assert_eq!(a.expansions, 4);
        assert_eq!(a.outputs, 5);
        assert_eq!(a.candidates_per_output(), Some(3.0));
        assert_eq!(MinerStats::default().candidates_per_output(), None);
    }
}
