//! PSM — the pivot sequence miner (paper Sec. 5.2, Alg. 2).
//!
//! PSM enumerates *only* pivot sequences: it starts from the pivot item and
//! grows patterns with right expansions first, then left expansions. Every
//! pivot sequence `S` has the unique decomposition `S = Sl·w·Sr` with
//! `w ∉ Sr` (the last pivot occurrence); PSM reaches it by left-expanding to
//! `Sl·w` and then right-expanding to append `Sr`. Two rules make the
//! enumeration duplicate-free:
//!
//! * right expansions never use the pivot item (so `Sr` stays pivot-free);
//! * a sequence produced by a right expansion is never left-expanded.
//!
//! The optional **right-expansion index** records, per suffix depth, the
//! union of frequent right-extension items found while expanding a prefix;
//! when the prefix is later left-extended, the child's right expansions only
//! consider items in the parent's index (support monotonicity, Lemma 1 —
//! `Sw'` infrequent implies `w''Sw'` infrequent). This is the paper's
//! "actual implementation", which unions the per-sequence indexes of each
//! level of a right-expansion series.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::hierarchy::ItemSpace;
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::sequence::Partition;

use super::expansion::{count_extensions, project, Dir, Projection};
use super::{LocalMiner, MinerStats};

/// The pivot sequence miner; `use_index` enables the right-expansion index
/// ("PSM + Index" in Fig. 4(c,d)).
#[derive(Debug, Clone, Copy, Default)]
pub struct PsmMiner {
    /// Enable the right-expansion index optimization.
    pub use_index: bool,
}

impl PsmMiner {
    /// PSM without the index.
    pub fn plain() -> Self {
        PsmMiner { use_index: false }
    }

    /// PSM with the right-expansion index.
    pub fn indexed() -> Self {
        PsmMiner { use_index: true }
    }
}

/// Per-depth unions of frequent right-extension items for one left-prefix
/// context: `levels[d-1]` holds the items seen at suffix depth `d`.
#[derive(Debug, Default)]
struct RightIndex {
    levels: Vec<FxHashSet<u32>>,
}

impl RightIndex {
    fn record(&mut self, depth: usize, item: u32) {
        while self.levels.len() < depth {
            self.levels.push(FxHashSet::default());
        }
        self.levels[depth - 1].insert(item);
    }

    /// The allowed items at `depth`, or an empty set if the parent's series
    /// never found frequent items there (then no scan is needed at all).
    fn allowed(&self, depth: usize) -> Option<&FxHashSet<u32>> {
        self.levels.get(depth - 1)
    }
}

struct Run<'a> {
    partition: &'a Partition,
    space: &'a ItemSpace,
    params: &'a GsmParams,
    pivot: u32,
    use_index: bool,
    out: PatternSet,
    stats: MinerStats,
    counts: FxHashMap<u32, u64>,
}

impl Run<'_> {
    /// Right-expansion series (Alg. 2, `dir = right`). `depth` is the suffix
    /// length after the last pivot that the next extension would create;
    /// `parent_index` restricts candidates when mining under a left prefix;
    /// `record` accumulates this context's own index for its children.
    fn expand_right(
        &mut self,
        pattern: &mut Vec<u32>,
        proj: &Projection,
        depth: usize,
        parent_index: Option<&RightIndex>,
        record: Option<&mut RightIndex>,
    ) {
        if pattern.len() == self.params.lambda {
            return;
        }
        let allowed = match parent_index {
            Some(idx) if self.use_index => match idx.allowed(depth) {
                // Parent never found frequent items at this depth: RS = ∅,
                // skip the scan entirely.
                None => return,
                Some(set) if set.is_empty() => return,
                Some(set) => Some(set),
            },
            _ => None,
        };
        self.stats.expansions += 1;
        let mut counts = std::mem::take(&mut self.counts);
        self.stats.candidates += count_extensions(
            proj,
            self.partition,
            self.space,
            self.params.gamma,
            Dir::Right,
            self.pivot,
            Some(self.pivot),
            allowed,
            &mut counts,
        );
        let mut frequent: Vec<(u32, u64)> = counts
            .iter()
            .filter(|&(_, &f)| f >= self.params.sigma)
            .map(|(&w, &f)| (w, f))
            .collect();
        self.counts = counts;
        frequent.sort_unstable();
        let mut record = record;
        for (w, freq) in frequent {
            if let Some(rec) = record.as_deref_mut() {
                rec.record(depth, w);
            }
            let next = project(
                proj,
                self.partition,
                self.space,
                self.params.gamma,
                Dir::Right,
                w,
            );
            pattern.push(w);
            self.out.insert(pattern.clone(), freq);
            self.expand_right(
                pattern,
                &next,
                depth + 1,
                parent_index,
                record.as_deref_mut(),
            );
            pattern.pop();
        }
    }

    /// Left-expansion series (Alg. 2, `dir = left`). `pattern` is an
    /// all-left-chain sequence `Sl·w`; `my_index` is the index gathered by
    /// its right-expansion series.
    fn expand_left(&mut self, pattern: &mut Vec<u32>, proj: &Projection, my_index: &RightIndex) {
        if pattern.len() == self.params.lambda {
            return;
        }
        self.stats.expansions += 1;
        let mut counts = std::mem::take(&mut self.counts);
        // Left expansions may use any item ≤ pivot, including the pivot
        // itself (`DD` decomposes as Sl=D, w=D, Sr=ε).
        self.stats.candidates += count_extensions(
            proj,
            self.partition,
            self.space,
            self.params.gamma,
            Dir::Left,
            self.pivot,
            None,
            None,
            &mut counts,
        );
        let mut frequent: Vec<(u32, u64)> = counts
            .iter()
            .filter(|&(_, &f)| f >= self.params.sigma)
            .map(|(&w, &f)| (w, f))
            .collect();
        self.counts = counts;
        frequent.sort_unstable();
        for (w, freq) in frequent {
            let next = project(
                proj,
                self.partition,
                self.space,
                self.params.gamma,
                Dir::Left,
                w,
            );
            pattern.insert(0, w);
            self.out.insert(pattern.clone(), freq);
            let mut child_index = RightIndex::default();
            self.expand_right(pattern, &next, 1, Some(my_index), Some(&mut child_index));
            self.expand_left(pattern, &next, &child_index);
            pattern.remove(0);
        }
    }
}

impl LocalMiner for PsmMiner {
    fn name(&self) -> &'static str {
        if self.use_index {
            "PSM+Index"
        } else {
            "PSM"
        }
    }

    fn mine(
        &self,
        partition: &Partition,
        pivot: u32,
        space: &ItemSpace,
        params: &GsmParams,
    ) -> (PatternSet, MinerStats) {
        let mut run = Run {
            partition,
            space,
            params,
            pivot,
            use_index: self.use_index,
            out: PatternSet::new(),
            stats: MinerStats::default(),
            counts: FxHashMap::default(),
        };
        let proj = Projection::for_item(partition, space, pivot);
        if !proj.is_empty() {
            let mut pattern = vec![pivot];
            let mut root_index = RightIndex::default();
            // Root has no parent index: pass None so no restriction applies
            // even when use_index is on.
            run.expand_right(&mut pattern, &proj, 1, None, Some(&mut root_index));
            run.expand_left(&mut pattern, &proj, &root_index);
        }
        run.stats.outputs = run.out.len() as u64;
        (run.out, run.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::minertests::{
        check_aggregation_invariance, check_fig2_outputs, fig2_partition,
    };
    use super::super::{DfsMiner, NaiveMiner};
    use super::*;
    use crate::sequence::WeightedSequence;
    use crate::testutil::{fig2_context, named_patterns, ranks};

    #[test]
    fn psm_reproduces_fig2_partition_outputs() {
        check_fig2_outputs(&PsmMiner::plain());
    }

    #[test]
    fn psm_indexed_reproduces_fig2_partition_outputs() {
        check_fig2_outputs(&PsmMiner::indexed());
    }

    #[test]
    fn aggregation_invariant() {
        check_aggregation_invariance(&PsmMiner::plain());
        check_aggregation_invariance(&PsmMiner::indexed());
    }

    /// A partition in the spirit of the paper's Sec. 5 example (Eq. 4): pivot
    /// sequences must include patterns reached via left-then-right expansion
    /// such as `caD`, and repeated-pivot patterns such as `DD`.
    #[test]
    fn mines_left_then_right_and_repeated_pivots() {
        let ctx = fig2_context();
        let space = ctx.space();
        let [a, c, d] = ranks(&ctx, &["a", "c", "D"])[..] else {
            panic!()
        };
        let params = GsmParams::new(2, 1, 4).unwrap();
        let partition = crate::sequence::Partition {
            sequences: vec![
                WeightedSequence::new(vec![a, d, d, a], 1),
                WeightedSequence::new(vec![c, a, d, d], 1),
                WeightedSequence::new(vec![c, a, d], 1),
            ],
        };
        let (got, _) = PsmMiner::plain().mine(&partition, d, space, &params);
        // caD via LE(c after a) chains; DD via left expansion with the pivot.
        assert_eq!(got.get(&[c, a, d]), Some(2));
        assert_eq!(got.get(&[a, d],), Some(3));
        assert_eq!(got.get(&[d, d]), Some(2));
        assert_eq!(got.get(&[a, d, d]), Some(2));
        // And it agrees with ground truth entirely.
        let (naive, _) = NaiveMiner.mine(&partition, d, space, &params);
        assert_eq!(got, naive);
        let (indexed, _) = PsmMiner::indexed().mine(&partition, d, space, &params);
        assert_eq!(indexed, naive);
    }

    #[test]
    fn psm_explores_fewer_candidates_than_dfs() {
        // Paper Sec. 5.2: PSM explores roughly a third of DFS's search space
        // on the P_D-style example; we assert the ordering (and that the
        // index never explores more than plain PSM) on the Fig. 2 partitions.
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let mut dfs_total = 0u64;
        let mut psm_total = 0u64;
        let mut idx_total = 0u64;
        for pivot in ["a", "B", "b1", "c", "D"] {
            let partition = fig2_partition(&ctx, pivot, &params);
            let p = ctx.rank(pivot);
            let (_, s1) = DfsMiner.mine(&partition, p, ctx.space(), &params);
            let (_, s2) = PsmMiner::plain().mine(&partition, p, ctx.space(), &params);
            let (_, s3) = PsmMiner::indexed().mine(&partition, p, ctx.space(), &params);
            dfs_total += s1.candidates;
            psm_total += s2.candidates;
            idx_total += s3.candidates;
        }
        assert!(psm_total < dfs_total, "PSM {psm_total} vs DFS {dfs_total}");
        assert!(
            idx_total <= psm_total,
            "index {idx_total} vs plain {psm_total}"
        );
    }

    #[test]
    fn respects_lambda_boundary() {
        let ctx = fig2_context();
        let params = GsmParams::new(1, 1, 2).unwrap();
        let partition = fig2_partition(&ctx, "B", &params);
        let (got, _) = PsmMiner::plain().mine(&partition, ctx.rank("B"), ctx.space(), &params);
        assert!(got.iter().all(|(p, _)| p.len() == 2));
    }

    #[test]
    fn empty_partition_yields_nothing() {
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let (got, stats) =
            PsmMiner::indexed().mine(&crate::sequence::Partition::new(), 0, ctx.space(), &params);
        assert!(got.is_empty());
        assert_eq!(stats, MinerStats::default());
    }

    #[test]
    fn every_output_contains_the_pivot() {
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 4).unwrap();
        for pivot in ["a", "B", "b1", "c", "D"] {
            let partition = fig2_partition(&ctx, pivot, &params);
            let p = ctx.rank(pivot);
            let (got, _) = PsmMiner::indexed().mine(&partition, p, ctx.space(), &params);
            for (pat, _) in got.iter() {
                assert_eq!(pat.iter().copied().max(), Some(p));
                assert!(pat.len() >= 2 && pat.len() <= 4);
            }
        }
    }

    #[test]
    fn named_expected_outputs_for_pd_style_partition() {
        // Cross-check one partition in name space for readability.
        let ctx = fig2_context();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let partition = fig2_partition(&ctx, "D", &params);
        let (got, _) = PsmMiner::indexed().mine(&partition, ctx.rank("D"), ctx.space(), &params);
        assert_eq!(got, named_patterns(&ctx, &[("b1 D", 2), ("B D", 2)]));
    }
}
