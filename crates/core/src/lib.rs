//! # lash-core
//!
//! A from-scratch implementation of **LASH** (Beedkar & Gemulla, SIGMOD 2015):
//! scalable generalized sequence mining (GSM) in the presence of item
//! hierarchies.
//!
//! Given a database of sequences over a vocabulary arranged in a forest
//! hierarchy, a minimum support `σ`, a maximum gap `γ`, and a maximum length
//! `λ`, GSM finds every generalized sequence `S` with `2 ≤ |S| ≤ λ` that is
//! supported by at least `σ` input sequences, where support counts sequences
//! `T` with `S ⊑γ T` — `S` embeds into `T` allowing each matched item of `T`
//! to be *generalized* upward along the hierarchy and at most `γ` gap items
//! between consecutive matches.
//!
//! ## Crate layout
//!
//! * [`vocabulary`] / [`hierarchy`] — string vocabulary and forest hierarchy;
//! * [`sequence`] — sequence database storage;
//! * [`params`] — the `(σ, γ, λ)` parameter triple;
//! * [`matching`] — the `S ⊑γ T` relation and embedding search;
//! * [`enumeration`] — `G1(T)` and `Gλ(T)` generalized-subsequence enumeration;
//! * [`flist`] — the generalized f-list, the hierarchy-aware total order, and
//!   the rank re-encoding that underlies partitioning;
//! * [`rewrite`] — partition construction: w-generalization, unreachability
//!   reduction, isolated-pivot removal, blank compression;
//! * [`miner`] — local miners: naive enumeration, BFS (SPADE-style), DFS
//!   (PrefixSpan-style), and PSM, the pivot sequence miner (± index);
//! * [`distributed`] — the MapReduce pipelines: f-list job, LASH
//!   partition-and-mine job, naive / semi-naive baselines, and MG-FSM;
//! * [`stats`] — closed / maximal / non-trivial output statistics (Table 3).
//!
//! ## Quick start
//!
//! ```
//! use lash_core::prelude::*;
//!
//! // Build a vocabulary with a small hierarchy: "golden" -> "retriever" -> "dog".
//! let mut vb = VocabularyBuilder::new();
//! let dog = vb.intern("dog");
//! let retriever = vb.child("retriever", dog);
//! let golden = vb.child("golden", retriever);
//! let poodle = vb.child("poodle", dog);
//! let walks = vb.intern("walks");
//! let vocab = vb.finish().unwrap();
//!
//! // A database of three sequences.
//! let mut db = SequenceDatabase::new();
//! db.push(&[golden, walks]);
//! db.push(&[poodle, walks]);
//! db.push(&[retriever, walks]);
//!
//! // Mine with σ=2, γ=0, λ=2.
//! let params = GsmParams::new(2, 0, 2).unwrap();
//! let result = Lash::new(LashConfig::default())
//!     .mine(&db, &vocab, &params)
//!     .unwrap();
//!
//! // "dog walks" is frequent (support 3) even though "dog" never occurs literally.
//! assert!(result
//!     .patterns()
//!     .iter()
//!     .any(|p| p.to_names(&vocab) == ["dog", "walks"] && p.frequency == 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod dag;
pub mod distributed;
pub mod enumeration;
pub mod error;
pub mod flist;
pub mod fxhash;
pub mod hierarchy;
pub mod io;
pub mod matching;
pub mod miner;
pub mod params;
pub mod pattern;
pub mod rewrite;
pub mod sequence;
pub mod stats;
pub mod vocabulary;

#[cfg(test)]
pub(crate) mod testutil;

pub use crate::context::MiningContext;
pub use crate::distributed::lash_job::{Lash, LashConfig, LashResult, MinerKind};
pub use crate::error::{Error, Result};
pub use crate::flist::{FList, ItemOrder};
pub use crate::hierarchy::ItemSpace;
pub use crate::params::GsmParams;
pub use crate::pattern::{Pattern, PatternSet};
pub use crate::sequence::{SequenceDatabase, ShardedCorpus};
pub use crate::vocabulary::{ItemId, Vocabulary, VocabularyBuilder};

/// The blank placeholder symbol "␣" (paper Sec. 3.3 / 4.2).
///
/// It is larger than every item under the total order, as the paper requires
/// (`w < ␣` for all items `w`); ranks are small for frequent items.
pub const BLANK: u32 = lash_encoding::BLANK;

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::context::MiningContext;
    pub use crate::distributed::lash_job::{Lash, LashConfig, LashResult, MinerKind};
    pub use crate::error::{Error, Result};
    pub use crate::miner::{LocalMiner, MinerStats};
    pub use crate::params::GsmParams;
    pub use crate::pattern::{Pattern, PatternSet};
    pub use crate::sequence::SequenceDatabase;
    pub use crate::vocabulary::{ItemId, Vocabulary, VocabularyBuilder};
}
