//! DAG hierarchies: generalized sequence mining when items may have
//! **multiple parents** (paper footnote 2: "in some applications … the
//! hierarchy may instead form a directed acyclic graph; our methods can be
//! extended to deal with such hierarchies as well").
//!
//! With multiple parents, `u →* v` is membership of `v` in `u`'s *ancestor
//! closure*. Two properties of the forest setting survive:
//!
//! * the generalized document frequency is still monotone
//!   (`f0(parent) ≥ f0(child)`), so the frequency-descending, depth-aware
//!   total order still ranks every ancestor before its descendants;
//! * pattern growth with closure-based extension enumerates exactly the
//!   frequent generalized sequences.
//!
//! What does **not** survive unchanged is w-generalization: an irrelevant
//! item with two *incomparable* relevant ancestors cannot be replaced by
//! either one without losing patterns through the other. [`DagMiner`]
//! therefore mines partitions pivot-by-pivot without destructive rewrites —
//! extensions are simply capped at the pivot rank — trading the paper's
//! compression for correctness. It is a sequential reference implementation
//! of the extension, validated against exhaustive enumeration.

use crate::error::{Error, Result};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::params::GsmParams;
use crate::pattern::PatternSet;
use crate::sequence::SequenceDatabase;
use crate::vocabulary::ItemId;
use crate::BLANK;

/// Builder for a multi-parent vocabulary.
#[derive(Debug, Default)]
pub struct MultiVocabularyBuilder {
    names: Vec<String>,
    index: FxHashMap<String, ItemId>,
    parents: Vec<Vec<ItemId>>,
}

impl MultiVocabularyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, inserting it if new.
    pub fn intern(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = ItemId::from_u32(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        self.parents.push(Vec::new());
        id
    }

    /// Adds a generalization edge `child → parent`. Errors on cycles;
    /// duplicate edges are ignored.
    pub fn add_parent(&mut self, child: ItemId, parent: ItemId) -> Result<()> {
        if child.index() >= self.names.len() {
            return Err(Error::UnknownItem(child.as_u32()));
        }
        if parent.index() >= self.names.len() {
            return Err(Error::UnknownItem(parent.as_u32()));
        }
        if self.parents[child.index()].contains(&parent) {
            return Ok(());
        }
        // Cycle check: is `child` reachable from `parent`?
        let mut stack = vec![parent];
        let mut seen = FxHashSet::default();
        while let Some(node) = stack.pop() {
            if node == child {
                return Err(Error::HierarchyCycle {
                    item: child.as_u32(),
                });
            }
            if seen.insert(node) {
                stack.extend(self.parents[node.index()].iter().copied());
            }
        }
        self.parents[child.index()].push(parent);
        Ok(())
    }

    /// Finalizes the vocabulary, computing ancestor closures and longest-path
    /// depths.
    pub fn finish(self) -> MultiVocabulary {
        let n = self.names.len();
        // Ancestor closures via memoized DFS (acyclic by construction).
        let mut closures: Vec<Option<Vec<ItemId>>> = vec![None; n];
        fn closure_of(
            item: usize,
            parents: &[Vec<ItemId>],
            closures: &mut Vec<Option<Vec<ItemId>>>,
        ) -> Vec<ItemId> {
            if let Some(c) = &closures[item] {
                return c.clone();
            }
            let mut set: FxHashSet<ItemId> = FxHashSet::default();
            set.insert(ItemId::from_u32(item as u32));
            for &p in &parents[item] {
                for a in closure_of(p.index(), parents, closures) {
                    set.insert(a);
                }
            }
            let mut c: Vec<ItemId> = set.into_iter().collect();
            c.sort_unstable();
            closures[item] = Some(c.clone());
            c
        }
        for i in 0..n {
            closure_of(i, &self.parents, &mut closures);
        }
        // Longest-path depth: roots are 0.
        let mut depth = vec![u32::MAX; n];
        fn depth_of(item: usize, parents: &[Vec<ItemId>], depth: &mut Vec<u32>) -> u32 {
            if depth[item] != u32::MAX {
                return depth[item];
            }
            let d = parents[item]
                .iter()
                .map(|p| depth_of(p.index(), parents, depth) + 1)
                .max()
                .unwrap_or(0);
            depth[item] = d;
            d
        }
        for i in 0..n {
            depth_of(i, &self.parents, &mut depth);
        }
        MultiVocabulary {
            names: self.names,
            index: self.index,
            parents: self.parents,
            closures: closures.into_iter().map(|c| c.expect("computed")).collect(),
            depth,
        }
    }
}

/// An immutable multi-parent vocabulary with precomputed ancestor closures.
#[derive(Debug, Clone)]
pub struct MultiVocabulary {
    names: Vec<String>,
    index: FxHashMap<String, ItemId>,
    parents: Vec<Vec<ItemId>>,
    /// Sorted ancestor closure of each item, **including the item itself**.
    closures: Vec<Vec<ItemId>>,
    depth: Vec<u32>,
}

impl MultiVocabulary {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Item name.
    pub fn name(&self, item: ItemId) -> &str {
        &self.names[item.index()]
    }

    /// Looks up an item by name.
    pub fn lookup(&self, name: &str) -> Option<ItemId> {
        self.index.get(name).copied()
    }

    /// The direct parents of `item`.
    pub fn parents(&self, item: ItemId) -> &[ItemId] {
        &self.parents[item.index()]
    }

    /// The sorted ancestor closure of `item`, including itself.
    pub fn closure(&self, item: ItemId) -> &[ItemId] {
        &self.closures[item.index()]
    }

    /// True if `u →* v` (u equals v or v is an ancestor of u).
    pub fn generalizes_to(&self, u: ItemId, v: ItemId) -> bool {
        self.closures[u.index()].binary_search(&v).is_ok()
    }

    /// Longest-path depth (roots are 0).
    pub fn depth(&self, item: ItemId) -> u32 {
        self.depth[item.index()]
    }
}

/// Preprocessed state for DAG mining: closure-based f-list, total order,
/// rank-space closures, and the rank-encoded database.
#[derive(Debug)]
pub struct DagContext {
    rank_of: Vec<u32>,
    item_of: Vec<ItemId>,
    num_frequent: u32,
    /// Rank-space closures (self + ancestors), ancestors all `< self`.
    closure_ranks: Vec<Vec<u32>>,
    db: Vec<Vec<u32>>,
}

impl DagContext {
    /// Computes the generalized f-list (each sequence counts once for every
    /// item in the closure of any of its items), the total order, and the
    /// rank re-encoding.
    pub fn build(db: &SequenceDatabase, vocab: &MultiVocabulary, sigma: u64) -> DagContext {
        let n = vocab.len();
        let mut doc_freq = vec![0u64; n];
        let mut seen: FxHashSet<ItemId> = FxHashSet::default();
        for seq in db.iter() {
            seen.clear();
            for &t in seq {
                for &a in vocab.closure(t) {
                    seen.insert(a);
                }
            }
            for &a in &seen {
                doc_freq[a.index()] += 1;
            }
        }
        let mut items: Vec<ItemId> = (0..n as u32).map(ItemId::from_u32).collect();
        items.sort_unstable_by(|&x, &y| {
            doc_freq[y.index()]
                .cmp(&doc_freq[x.index()])
                .then(vocab.depth(x).cmp(&vocab.depth(y)))
                .then(x.cmp(&y))
        });
        let mut rank_of = vec![0u32; n];
        for (rank, &item) in items.iter().enumerate() {
            rank_of[item.index()] = rank as u32;
        }
        let num_frequent = items
            .iter()
            .take_while(|&&it| doc_freq[it.index()] >= sigma)
            .count() as u32;
        let closure_ranks: Vec<Vec<u32>> = items
            .iter()
            .map(|&it| {
                let mut c: Vec<u32> = vocab
                    .closure(it)
                    .iter()
                    .map(|&a| rank_of[a.index()])
                    .collect();
                c.sort_unstable();
                c
            })
            .collect();
        let ranked_db: Vec<Vec<u32>> = db
            .iter()
            .map(|seq| seq.iter().map(|&t| rank_of[t.index()]).collect())
            .collect();
        DagContext {
            rank_of,
            item_of: items,
            num_frequent,
            closure_ranks,
            db: ranked_db,
        }
    }

    /// The rank of an item.
    pub fn rank(&self, item: ItemId) -> u32 {
        self.rank_of[item.index()]
    }

    /// The item at a rank.
    pub fn item(&self, rank: u32) -> ItemId {
        self.item_of[rank as usize]
    }

    /// Number of frequent ranks.
    pub fn num_frequent(&self) -> u32 {
        self.num_frequent
    }

    /// The sorted rank-space closure (self + ancestors) of `rank`.
    pub fn closure(&self, rank: u32) -> &[u32] {
        &self.closure_ranks[rank as usize]
    }

    /// True if rank `u` generalizes to rank `v`.
    pub fn generalizes_to(&self, u: u32, v: u32) -> bool {
        u != BLANK && v != BLANK && self.closure_ranks[u as usize].binary_search(&v).is_ok()
    }

    /// The rank-encoded database.
    pub fn db(&self) -> &[Vec<u32>] {
        &self.db
    }
}

/// True if `pattern ⊑γ seq` under the DAG closure.
#[allow(clippy::needless_range_loop)] // gap-window scans are clearer with indices
pub fn matches_dag(pattern: &[u32], seq: &[u32], ctx: &DagContext, gamma: usize) -> bool {
    if pattern.is_empty() {
        return true;
    }
    let mut current: Vec<usize> = Vec::new();
    for (p, &t) in seq.iter().enumerate() {
        if t != BLANK && ctx.generalizes_to(t, pattern[0]) {
            current.push(p);
        }
    }
    for &s in &pattern[1..] {
        if current.is_empty() {
            return false;
        }
        let mut next = Vec::new();
        let mut lo = 0usize;
        for q in current[0] + 1..seq.len() {
            let t = seq[q];
            if t == BLANK || !ctx.generalizes_to(t, s) {
                continue;
            }
            while lo < current.len() && current[lo] + gamma + 1 < q {
                lo += 1;
            }
            if lo < current.len() && current[lo] < q {
                next.push(q);
            }
        }
        current = next;
    }
    !current.is_empty()
}

/// Exhaustive DAG-GSM enumeration — the oracle for [`DagMiner`].
pub fn naive_dag(
    db: &SequenceDatabase,
    vocab: &MultiVocabulary,
    params: &GsmParams,
) -> (DagContext, PatternSet) {
    let ctx = DagContext::build(db, vocab, params.sigma);
    let mut counts: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
    let mut current = Vec::new();
    let mut per_seq: FxHashSet<Vec<u32>> = FxHashSet::default();
    for seq in ctx.db() {
        per_seq.clear();
        for start in 0..seq.len() {
            enumerate(seq, &ctx, params, start, &mut current, &mut per_seq, true);
        }
        for s in per_seq.drain() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    let set = PatternSet::from_pairs(counts.into_iter().filter(|(_, f)| *f >= params.sigma));
    (ctx, set)
}

fn enumerate(
    seq: &[u32],
    ctx: &DagContext,
    params: &GsmParams,
    pos: usize,
    current: &mut Vec<u32>,
    out: &mut FxHashSet<Vec<u32>>,
    is_start: bool,
) {
    if !is_start && current.len() >= 2 {
        out.insert(current.clone());
    }
    if current.len() == params.lambda && !is_start {
        return;
    }
    if is_start {
        let t = seq[pos];
        if t == BLANK {
            return;
        }
        for ai in 0..ctx.closure(t).len() {
            let a = ctx.closure(t)[ai];
            current.push(a);
            enumerate(seq, ctx, params, pos, current, out, false);
            current.pop();
        }
        return;
    }
    let from = pos + 1;
    let to = (pos + 1 + params.gamma).min(seq.len().saturating_sub(1));
    for q in from..=to {
        let t = seq[q];
        if t == BLANK {
            continue;
        }
        for ai in 0..ctx.closure(t).len() {
            let a = ctx.closure(t)[ai];
            current.push(a);
            enumerate(seq, ctx, params, q, current, out, false);
            current.pop();
        }
    }
}

/// A mined DAG pattern in vocabulary space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagPattern {
    /// The pattern items.
    pub items: Vec<ItemId>,
    /// Its frequency.
    pub frequency: u64,
}

/// Sequential pivot-sequence miner over DAG hierarchies.
///
/// Mines each frequent pivot's sequences by PSM-style growth (right
/// expansions, then left expansions, extension items capped at the pivot)
/// directly on the database — no destructive rewrites, see module docs.
#[derive(Debug, Default)]
pub struct DagMiner;

impl DagMiner {
    /// Mines all frequent generalized sequences.
    pub fn mine(
        &self,
        db: &SequenceDatabase,
        vocab: &MultiVocabulary,
        params: &GsmParams,
    ) -> (DagContext, PatternSet) {
        let ctx = DagContext::build(db, vocab, params.sigma);
        let mut out = PatternSet::new();
        for pivot in 0..ctx.num_frequent() {
            let mut run = DagRun {
                ctx: &ctx,
                params,
                pivot,
                out: &mut out,
            };
            run.mine_pivot();
        }
        let patterns = out;
        (ctx, patterns)
    }

    /// Mines and decodes to vocabulary-space patterns sorted by frequency.
    pub fn mine_patterns(
        &self,
        db: &SequenceDatabase,
        vocab: &MultiVocabulary,
        params: &GsmParams,
    ) -> Vec<DagPattern> {
        let (ctx, set) = self.mine(db, vocab, params);
        let mut patterns: Vec<DagPattern> = set
            .iter()
            .map(|(ranks, frequency)| DagPattern {
                items: ranks.iter().map(|&r| ctx.item(r)).collect(),
                frequency,
            })
            .collect();
        patterns.sort_by(|a, b| b.frequency.cmp(&a.frequency).then(a.items.cmp(&b.items)));
        patterns
    }
}

/// Embeddings as (start, end) windows per sequence index.
type Proj = Vec<(u32, Vec<(u32, u32)>)>;

struct DagRun<'a> {
    ctx: &'a DagContext,
    params: &'a GsmParams,
    pivot: u32,
    out: &'a mut PatternSet,
}

impl DagRun<'_> {
    fn mine_pivot(&mut self) {
        let mut proj: Proj = Vec::new();
        for (i, seq) in self.ctx.db().iter().enumerate() {
            let embs: Vec<(u32, u32)> = seq
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t != BLANK && self.ctx.generalizes_to(t, self.pivot))
                .map(|(p, _)| (p as u32, p as u32))
                .collect();
            if !embs.is_empty() {
                proj.push((i as u32, embs));
            }
        }
        if proj.is_empty() {
            return;
        }
        let mut pattern = vec![self.pivot];
        self.expand(&mut pattern, &proj, true);
        self.expand(&mut pattern, &proj, false);
    }

    fn candidates(&self, proj: &Proj, right: bool, exclude_pivot: bool) -> Vec<(u32, u64)> {
        let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
        let mut per_seq: FxHashSet<u32> = FxHashSet::default();
        for (si, embs) in proj {
            let seq = &self.ctx.db()[*si as usize];
            per_seq.clear();
            for &(start, end) in embs {
                let window: Box<dyn Iterator<Item = usize>> = if right {
                    let from = end as usize + 1;
                    let to =
                        (end as usize + 1 + self.params.gamma).min(seq.len().saturating_sub(1));
                    Box::new(from..=to)
                } else {
                    let to = start as usize;
                    let from = to.saturating_sub(self.params.gamma + 1);
                    Box::new(from..to)
                };
                for q in window {
                    let t = seq[q];
                    if t == BLANK {
                        continue;
                    }
                    for &a in self.ctx.closure(t) {
                        if a > self.pivot {
                            break; // closures are sorted ascending
                        }
                        if exclude_pivot && a == self.pivot {
                            continue;
                        }
                        per_seq.insert(a);
                    }
                }
            }
            for &a in &per_seq {
                *counts.entry(a).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<(u32, u64)> = counts
            .into_iter()
            .filter(|&(_, f)| f >= self.params.sigma)
            .collect();
        frequent.sort_unstable();
        frequent
    }

    #[allow(clippy::needless_range_loop)] // gap-window scans are clearer with indices
    fn project(&self, proj: &Proj, item: u32, right: bool) -> Proj {
        let mut next = Vec::new();
        for (si, embs) in proj {
            let seq = &self.ctx.db()[*si as usize];
            let mut new_embs = Vec::new();
            for &(start, end) in embs {
                if right {
                    let from = end as usize + 1;
                    let to =
                        (end as usize + 1 + self.params.gamma).min(seq.len().saturating_sub(1));
                    for q in from..=to {
                        if seq[q] != BLANK && self.ctx.generalizes_to(seq[q], item) {
                            new_embs.push((start, q as u32));
                        }
                    }
                } else {
                    let to = start as usize;
                    let from = to.saturating_sub(self.params.gamma + 1);
                    for q in from..to {
                        if seq[q] != BLANK && self.ctx.generalizes_to(seq[q], item) {
                            new_embs.push((q as u32, end));
                        }
                    }
                }
            }
            if !new_embs.is_empty() {
                new_embs.sort_unstable();
                new_embs.dedup();
                next.push((*si, new_embs));
            }
        }
        next
    }

    /// PSM-style growth: `right = true` is a right-expansion series (never
    /// followed by left expansions, pivot excluded); `right = false`
    /// left-expands and recurses both ways.
    fn expand(&mut self, pattern: &mut Vec<u32>, proj: &Proj, right: bool) {
        if pattern.len() == self.params.lambda {
            return;
        }
        for (item, freq) in self.candidates(proj, right, right) {
            let next = self.project(proj, item, right);
            if right {
                pattern.push(item);
                self.out.insert(pattern.clone(), freq);
                self.expand(pattern, &next, true);
                pattern.pop();
            } else {
                pattern.insert(0, item);
                self.out.insert(pattern.clone(), freq);
                self.expand(pattern, &next, true);
                self.expand(pattern, &next, false);
                pattern.remove(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond DAG: `gold_watch` generalizes to both `jewelry` and
    /// `gift`, which both generalize to `product`.
    fn diamond() -> (MultiVocabulary, Vec<ItemId>) {
        let mut vb = MultiVocabularyBuilder::new();
        let product = vb.intern("product");
        let jewelry = vb.intern("jewelry");
        let gift = vb.intern("gift");
        let watch = vb.intern("gold_watch");
        let card = vb.intern("greeting_card");
        let buys = vb.intern("buys");
        vb.add_parent(jewelry, product).unwrap();
        vb.add_parent(gift, product).unwrap();
        vb.add_parent(watch, jewelry).unwrap();
        vb.add_parent(watch, gift).unwrap();
        vb.add_parent(card, gift).unwrap();
        let vocab = vb.finish();
        (vocab, vec![product, jewelry, gift, watch, card, buys])
    }

    #[test]
    fn closures_cover_all_paths() {
        let (vocab, ids) = diamond();
        let [product, jewelry, gift, watch, card, _] = ids[..] else {
            panic!()
        };
        assert!(vocab.generalizes_to(watch, jewelry));
        assert!(vocab.generalizes_to(watch, gift));
        assert!(vocab.generalizes_to(watch, product));
        assert!(vocab.generalizes_to(card, gift));
        assert!(!vocab.generalizes_to(card, jewelry));
        assert_eq!(vocab.closure(watch).len(), 4);
        assert_eq!(vocab.depth(watch), 2);
        assert_eq!(vocab.depth(product), 0);
        assert_eq!(vocab.parents(watch).len(), 2);
    }

    #[test]
    fn cycle_detection() {
        let mut vb = MultiVocabularyBuilder::new();
        let a = vb.intern("a");
        let b = vb.intern("b");
        let c = vb.intern("c");
        vb.add_parent(a, b).unwrap();
        vb.add_parent(b, c).unwrap();
        assert!(vb.add_parent(c, a).is_err());
        assert!(vb.add_parent(a, a).is_err());
        // Duplicate edges are fine.
        vb.add_parent(a, b).unwrap();
        // Diamonds are fine (not cycles).
        let d = vb.intern("d");
        vb.add_parent(d, b).unwrap();
        vb.add_parent(d, c).unwrap();
    }

    #[test]
    fn mines_through_both_diamond_paths() {
        let (vocab, ids) = diamond();
        let [_, jewelry, gift, watch, card, buys] = ids[..] else {
            panic!()
        };
        let mut db = SequenceDatabase::new();
        // Two sequences with a concrete watch purchase, one with a card.
        db.push(&[buys, watch]);
        db.push(&[buys, watch]);
        db.push(&[buys, card]);
        let params = GsmParams::new(2, 0, 2).unwrap();
        let patterns = DagMiner.mine_patterns(&db, &vocab, &params);
        let find = |items: &[ItemId]| patterns.iter().find(|p| p.items == items);
        // Both parents of `watch` yield patterns: the jewelry path with
        // frequency 2, the gift path with frequency 3 (card also a gift).
        assert_eq!(find(&[buys, jewelry]).unwrap().frequency, 2);
        assert_eq!(find(&[buys, gift]).unwrap().frequency, 3);
        assert_eq!(find(&[buys, watch]).unwrap().frequency, 2);
        // A forest encoding would have had to drop one of the two paths.
    }

    #[test]
    fn miner_matches_naive_enumeration() {
        let (vocab, ids) = diamond();
        let [product, jewelry, gift, watch, card, buys] = ids[..] else {
            panic!()
        };
        let mut db = SequenceDatabase::new();
        db.push(&[buys, watch, card]);
        db.push(&[watch, buys, watch]);
        db.push(&[card, card, buys]);
        db.push(&[buys, jewelry]); // intermediate level occurs directly
        db.push(&[gift, product]);
        for sigma in 1..4u64 {
            for gamma in 0..3usize {
                for lambda in 2..4usize {
                    let params = GsmParams::new(sigma, gamma, lambda).unwrap();
                    let (_, naive) = naive_dag(&db, &vocab, &params);
                    let (_, mined) = DagMiner.mine(&db, &vocab, &params);
                    assert_eq!(
                        naive,
                        mined,
                        "σ={sigma} γ={gamma} λ={lambda}: {:?}",
                        naive.diff(&mined)
                    );
                }
            }
        }
    }

    #[test]
    fn matches_dag_uses_closures() {
        let (vocab, ids) = diamond();
        let [_, jewelry, gift, watch, _, buys] = ids[..] else {
            panic!()
        };
        let mut db = SequenceDatabase::new();
        db.push(&[buys, watch]);
        let ctx = DagContext::build(&db, &vocab, 1);
        let seq = &ctx.db()[0];
        let p = |items: &[ItemId]| -> Vec<u32> { items.iter().map(|&i| ctx.rank(i)).collect() };
        assert!(matches_dag(&p(&[buys, jewelry]), seq, &ctx, 0));
        assert!(matches_dag(&p(&[buys, gift]), seq, &ctx, 0));
        assert!(!matches_dag(&p(&[jewelry, buys]), seq, &ctx, 0));
        assert!(matches_dag(&[], seq, &ctx, 0));
    }

    #[test]
    fn frequency_monotone_order_holds_in_dags() {
        let (vocab, _) = diamond();
        let mut db = SequenceDatabase::new();
        let watch = vocab.lookup("gold_watch").unwrap();
        let card = vocab.lookup("greeting_card").unwrap();
        db.push(&[watch]);
        db.push(&[card]);
        db.push(&[watch, card]);
        let ctx = DagContext::build(&db, &vocab, 1);
        // Every ancestor must rank before its descendants.
        for item in [watch, card] {
            for &a in vocab.closure(item) {
                if a != item {
                    assert!(ctx.rank(a) < ctx.rank(item));
                }
            }
        }
    }
}
