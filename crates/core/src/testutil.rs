//! Shared test fixtures: the paper's running example (Fig. 1) and helpers for
//! writing assertions in item-name space.

use crate::context::MiningContext;
use crate::fxhash::FxHashSet;
use crate::sequence::SequenceDatabase;
use crate::vocabulary::{Vocabulary, VocabularyBuilder};

/// Builds the Fig. 1 vocabulary/hierarchy and example database:
///
/// ```text
/// T1: a b1 a b1      hierarchy: B -> {b1, b2, b3}, b1 -> {b11, b12, b13},
/// T2: a b3 c c b2               D -> {d1, d2}; a, c, e, f are roots.
/// T3: a c
/// T4: b11 a e a
/// T5: a b12 d1 c
/// T6: b13 f d2
/// ```
pub fn fig1() -> (Vocabulary, SequenceDatabase) {
    let mut vb = VocabularyBuilder::new();
    // Intern the frequent roots first so the a/B frequency tie (both 5) breaks
    // toward `a`, matching the paper's order a < B.
    let a = vb.intern("a");
    let b_cap = vb.intern("B");
    let c = vb.intern("c");
    let d_cap = vb.intern("D");
    let b1 = vb.child("b1", b_cap);
    let b2 = vb.child("b2", b_cap);
    let b3 = vb.child("b3", b_cap);
    let b11 = vb.child("b11", b1);
    let b12 = vb.child("b12", b1);
    let b13 = vb.child("b13", b1);
    let d1 = vb.child("d1", d_cap);
    let d2 = vb.child("d2", d_cap);
    let e = vb.intern("e");
    let f = vb.intern("f");
    let vocab = vb.finish().unwrap();

    let mut db = SequenceDatabase::new();
    db.push(&[a, b1, a, b1]); // T1
    db.push(&[a, b3, c, c, b2]); // T2
    db.push(&[a, c]); // T3
    db.push(&[b11, a, e, a]); // T4
    db.push(&[a, b12, d1, c]); // T5
    db.push(&[b13, f, d2]); // T6
    (vocab, db)
}

/// The Fig. 1 example preprocessed with σ = 2 (the paper's Fig. 2 setting).
pub fn fig2_context() -> Fig2Context {
    let (vocab, db) = fig1();
    let ctx = MiningContext::build(&db, &vocab, 2);
    Fig2Context { vocab, ctx }
}

/// A bundled vocabulary + context for the running example.
pub struct Fig2Context {
    /// The Fig. 1 vocabulary.
    pub vocab: Vocabulary,
    /// The σ=2 mining context.
    pub ctx: MiningContext,
}

impl Fig2Context {
    /// The rank-space hierarchy.
    pub fn space(&self) -> &crate::hierarchy::ItemSpace {
        self.ctx.space()
    }

    /// The `idx`-th ranked sequence (T1 = 0 … T6 = 5).
    pub fn ranked_seq(&self, idx: usize) -> &[u32] {
        self.ctx.ranked_seq(idx)
    }

    /// The rank of the named item.
    pub fn rank(&self, name: &str) -> u32 {
        self.ctx
            .order()
            .rank(self.vocab.lookup(name).expect("known item"))
    }
}

/// Converts item names to ranks in the given context.
pub fn ranks(ctx: &Fig2Context, names: &[&str]) -> Vec<u32> {
    names.iter().map(|n| ctx.rank(n)).collect()
}

/// Builds a set of rank sequences from space-separated name strings, e.g.
/// `named_set(&ctx, &["a B", "B a a"])`.
pub fn named_set(ctx: &Fig2Context, patterns: &[&str]) -> FxHashSet<Vec<u32>> {
    patterns
        .iter()
        .map(|p| p.split_whitespace().map(|n| ctx.rank(n)).collect())
        .collect()
}

/// Builds a [`crate::pattern::PatternSet`] from `(names, frequency)` pairs.
pub fn named_patterns(ctx: &Fig2Context, patterns: &[(&str, u64)]) -> crate::pattern::PatternSet {
    crate::pattern::PatternSet::from_pairs(patterns.iter().map(|(p, f)| {
        (
            p.split_whitespace()
                .map(|n| ctx.rank(n))
                .collect::<Vec<u32>>(),
            *f,
        )
    }))
}
