//! Plain-text I/O for sequence databases and hierarchies.
//!
//! Two line-oriented formats make it easy to feed real corpora to LASH:
//!
//! * **sequence files** — one input sequence per line, whitespace-separated
//!   item names (the format of most public sequence-mining datasets);
//! * **hierarchy files** — one `child<TAB>parent` edge per line; items not
//!   mentioned remain roots. Comment lines start with `#`.
//!
//! Readers intern items on the fly, so a vocabulary can be built from the
//! data alone or extended from an existing builder.

use std::io::{BufRead, Write};

use crate::error::{Error, Result};
use crate::sequence::SequenceDatabase;
use crate::vocabulary::{Vocabulary, VocabularyBuilder};

/// Reads a hierarchy file (`child<TAB>parent` per line) into `builder`.
///
/// Returns the number of edges added. Lines that are empty or start with `#`
/// are skipped. Errors on cycles or items with conflicting parents.
pub fn read_hierarchy(reader: impl BufRead, builder: &mut VocabularyBuilder) -> Result<usize> {
    let mut edges = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::Engine(format!("hierarchy read: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(2, '\t');
        let (Some(child), Some(parent)) = (parts.next(), parts.next()) else {
            return Err(Error::Engine(format!(
                "hierarchy line {} is not child<TAB>parent: {trimmed:?}",
                lineno + 1
            )));
        };
        let child = builder.intern(child.trim());
        let parent = builder.intern(parent.trim());
        builder.set_parent(child, parent)?;
        edges += 1;
    }
    Ok(edges)
}

/// A streaming consumer of interned sequences.
///
/// [`read_sequences_into`] feeds parsed sequences to a sink one at a time,
/// so a text corpus can be converted to another representation — an
/// in-memory [`SequenceDatabase`], or an on-disk corpus via `lash-store`'s
/// `CorpusWriter` — without materializing every sequence first.
pub trait SequenceSink {
    /// Accepts the next sequence. The slice is only valid for this call.
    fn accept(&mut self, seq: &[crate::vocabulary::ItemId]) -> Result<()>;
}

impl SequenceSink for SequenceDatabase {
    fn accept(&mut self, seq: &[crate::vocabulary::ItemId]) -> Result<()> {
        self.push(seq);
        Ok(())
    }
}

impl SequenceSink for Vec<Vec<crate::vocabulary::ItemId>> {
    fn accept(&mut self, seq: &[crate::vocabulary::ItemId]) -> Result<()> {
        self.push(seq.to_vec());
        Ok(())
    }
}

/// Streams a sequence file (one whitespace-separated sequence per line) into
/// `sink`, interning items into `builder`. Returns the number of sequences
/// accepted. Empty lines become empty sequences only when `keep_empty` is
/// set; comment lines (`#`) are always skipped.
pub fn read_sequences_into(
    reader: impl BufRead,
    builder: &mut VocabularyBuilder,
    keep_empty: bool,
    sink: &mut impl SequenceSink,
) -> Result<usize> {
    let mut count = 0usize;
    let mut items = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| Error::Engine(format!("sequence read: {e}")))?;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        items.clear();
        items.extend(trimmed.split_whitespace().map(|t| builder.intern(t)));
        if !items.is_empty() || keep_empty {
            sink.accept(&items)?;
            count += 1;
        }
    }
    Ok(count)
}

/// Reads a sequence file into memory, interning items into `builder`. Empty
/// lines become empty sequences only when `keep_empty` is set; comment lines
/// (`#`) are always skipped.
pub fn read_sequences(
    reader: impl BufRead,
    builder: &mut VocabularyBuilder,
    keep_empty: bool,
) -> Result<Vec<Vec<crate::vocabulary::ItemId>>> {
    let mut sequences = Vec::new();
    read_sequences_into(reader, builder, keep_empty, &mut sequences)?;
    Ok(sequences)
}

/// Convenience: loads a database and vocabulary from a hierarchy file and a
/// sequence file in one call.
pub fn load_corpus(
    hierarchy: impl BufRead,
    sequences: impl BufRead,
) -> Result<(Vocabulary, SequenceDatabase)> {
    let mut builder = VocabularyBuilder::new();
    read_hierarchy(hierarchy, &mut builder)?;
    let seqs = read_sequences(sequences, &mut builder, false)?;
    let vocab = builder.finish()?;
    let mut db = SequenceDatabase::new();
    for s in &seqs {
        db.push(s);
    }
    Ok((vocab, db))
}

/// Writes the hierarchy of `vocab` in `child<TAB>parent` format.
pub fn write_hierarchy(vocab: &Vocabulary, mut writer: impl Write) -> std::io::Result<()> {
    for item in vocab.items() {
        if let Some(parent) = vocab.parent(item) {
            writeln!(writer, "{}\t{}", vocab.name(item), vocab.name(parent))?;
        }
    }
    Ok(())
}

/// Writes `db` as a sequence file.
pub fn write_sequences(
    vocab: &Vocabulary,
    db: &SequenceDatabase,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for seq in db.iter() {
        let names: Vec<&str> = seq.iter().map(|&i| vocab.name(i)).collect();
        writeln!(writer, "{}", names.join(" "))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1;

    const HIERARCHY: &str = "\
# the Fig. 1 hierarchy
b1\tB
b2\tB
b3\tB
b11\tb1
b12\tb1
b13\tb1
d1\tD
d2\tD
";

    const SEQUENCES: &str = "\
a b1 a b1
a b3 c c b2
a c
b11 a e a
a b12 d1 c
b13 f d2
";

    #[test]
    fn loads_fig1_corpus_from_text() {
        let (vocab, db) = load_corpus(HIERARCHY.as_bytes(), SEQUENCES.as_bytes()).unwrap();
        assert_eq!(db.len(), 6);
        let b11 = vocab.lookup("b11").unwrap();
        let b1 = vocab.lookup("b1").unwrap();
        let b_cap = vocab.lookup("B").unwrap();
        assert!(vocab.generalizes_to(b11, b1));
        assert!(vocab.generalizes_to(b11, b_cap));
        // Mining the loaded corpus matches the paper.
        let params = crate::params::GsmParams::new(2, 1, 3).unwrap();
        let result = crate::distributed::lash_job::Lash::default()
            .mine(&db, &vocab, &params)
            .unwrap();
        assert_eq!(result.patterns().len(), 10);
    }

    #[test]
    fn round_trips_fig1_through_text() {
        let (vocab, db) = fig1();
        let mut hier = Vec::new();
        write_hierarchy(&vocab, &mut hier).unwrap();
        let mut seqs = Vec::new();
        write_sequences(&vocab, &db, &mut seqs).unwrap();
        let (vocab2, db2) = load_corpus(&hier[..], &seqs[..]).unwrap();
        assert_eq!(db2.len(), db.len());
        for i in 0..db.len() {
            let names1: Vec<&str> = db.get(i).iter().map(|&t| vocab.name(t)).collect();
            let names2: Vec<&str> = db2.get(i).iter().map(|&t| vocab2.name(t)).collect();
            assert_eq!(names1, names2);
        }
        // Hierarchy preserved.
        for item in vocab.items() {
            let name = vocab.name(item);
            let item2 = vocab2.lookup(name);
            if let Some(p) = vocab.parent(item) {
                let p2 = vocab2.parent(item2.unwrap()).unwrap();
                assert_eq!(vocab2.name(p2), vocab.name(p));
            }
        }
    }

    #[test]
    fn rejects_malformed_hierarchy_lines() {
        let mut vb = VocabularyBuilder::new();
        let bad = "child-without-parent\n";
        assert!(read_hierarchy(bad.as_bytes(), &mut vb).is_err());
    }

    #[test]
    fn rejects_cyclic_hierarchy_files() {
        let mut vb = VocabularyBuilder::new();
        let bad = "a\tb\nb\ta\n";
        assert!(read_hierarchy(bad.as_bytes(), &mut vb).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let mut vb = VocabularyBuilder::new();
        let text = "# comment\n\na b c\n# another\nd\n";
        let seqs = read_sequences(text.as_bytes(), &mut vb, false).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].len(), 3);
        assert_eq!(seqs[1].len(), 1);
    }

    #[test]
    fn sink_streaming_matches_collected_reading() {
        let text = "a b c\nd\n# comment\nb a\n";
        let mut vb = VocabularyBuilder::new();
        let collected = read_sequences(text.as_bytes(), &mut vb, false).unwrap();
        let mut vb = VocabularyBuilder::new();
        let mut db = SequenceDatabase::new();
        let n = read_sequences_into(text.as_bytes(), &mut vb, false, &mut db).unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.len(), collected.len());
        for (i, seq) in collected.iter().enumerate() {
            assert_eq!(db.get(i), &seq[..]);
        }
    }

    #[test]
    fn keep_empty_controls_blank_lines() {
        let mut vb = VocabularyBuilder::new();
        let text = "a\n\nb\n";
        let without = read_sequences(text.as_bytes(), &mut vb, false).unwrap();
        assert_eq!(without.len(), 2);
        let mut vb = VocabularyBuilder::new();
        let with = read_sequences(text.as_bytes(), &mut vb, true).unwrap();
        assert_eq!(with.len(), 3);
        assert!(with[1].is_empty());
    }
}
