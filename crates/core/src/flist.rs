//! The generalized f-list and the hierarchy-aware total order.
//!
//! The *generalized f-list* (paper Sec. 3.3) assigns each item `w` the number
//! of input sequences that contain `w` **or any of its descendants** — the
//! document frequency `f0(w, D)` under generalization. An item is frequent if
//! `f0(w, D) ≥ σ`.
//!
//! The *total order* `<` (paper Sec. 3.4) sorts items by descending
//! generalized frequency; ties are broken hierarchy-aware (items at higher —
//! i.e. shallower — levels first) so that `w2 → w1` implies `w1 < w2`; the
//! remaining ties are broken by item id for determinism. The resulting *rank*
//! is the integer id used throughout partitioning and mining: "highly frequent
//! items are assigned smaller integer ids" (Sec. 6.1).

use crate::enumeration::g1_items;
use crate::error::{Error, Result};
use crate::hierarchy::ItemSpace;
use crate::sequence::SequenceDatabase;
use crate::vocabulary::{ItemId, Vocabulary};

/// Generalized document frequencies per item (indexed by [`ItemId`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FList {
    doc_freq: Vec<u64>,
}

impl FList {
    /// Computes the generalized f-list sequentially.
    ///
    /// For each input sequence `T`, every item in `G1(T)` — the distinct items
    /// of `T` together with all their ancestors — is counted once.
    pub fn compute(db: &SequenceDatabase, vocab: &Vocabulary) -> FList {
        let mut doc_freq = vec![0u64; vocab.len()];
        let mut scratch = Vec::new();
        for seq in db.iter() {
            g1_items(seq, vocab, &mut scratch);
            for &item in &scratch {
                doc_freq[item.index()] += 1;
            }
        }
        FList { doc_freq }
    }

    /// Builds an f-list from precomputed frequencies (e.g. the distributed
    /// f-list job). Items absent from `pairs` get frequency 0.
    pub fn from_counts(
        vocab: &Vocabulary,
        pairs: impl IntoIterator<Item = (ItemId, u64)>,
    ) -> Result<FList> {
        let mut doc_freq = vec![0u64; vocab.len()];
        for (item, f) in pairs {
            if item.index() >= doc_freq.len() {
                return Err(Error::UnknownItem(item.as_u32()));
            }
            doc_freq[item.index()] = f;
        }
        Ok(FList { doc_freq })
    }

    /// The generalized document frequency `f0(item, D)`.
    pub fn frequency(&self, item: ItemId) -> u64 {
        self.doc_freq[item.index()]
    }

    /// Number of items with `f0 ≥ sigma`.
    pub fn num_frequent(&self, sigma: u64) -> usize {
        self.doc_freq.iter().filter(|&&f| f >= sigma).count()
    }

    /// Iterates `(item, frequency)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, u64)> + '_ {
        self.doc_freq
            .iter()
            .enumerate()
            .map(|(i, &f)| (ItemId::from_u32(i as u32), f))
    }
}

/// The hierarchy-aware total order: a bijection between [`ItemId`]s and ranks.
///
/// Frequent items occupy ranks `0..num_frequent`. The order can be reused
/// across runs with different parameters (paper Sec. 3.4); only
/// `num_frequent` depends on σ.
#[derive(Debug, Clone)]
pub struct ItemOrder {
    rank_of: Vec<u32>,
    item_of: Vec<ItemId>,
    num_frequent: u32,
}

impl ItemOrder {
    /// Builds the total order from an f-list.
    ///
    /// Sort key: descending `f0`, then ascending hierarchy depth (more general
    /// first — this is what makes the order hierarchy-aware), then ascending
    /// item id (deterministic tie-break).
    pub fn build(flist: &FList, vocab: &Vocabulary, sigma: u64) -> ItemOrder {
        let mut items: Vec<ItemId> = vocab.items().collect();
        items.sort_unstable_by(|&x, &y| {
            flist
                .frequency(y)
                .cmp(&flist.frequency(x))
                .then(vocab.depth(x).cmp(&vocab.depth(y)))
                .then(x.cmp(&y))
        });
        let mut rank_of = vec![0u32; vocab.len()];
        for (rank, &item) in items.iter().enumerate() {
            rank_of[item.index()] = rank as u32;
        }
        let num_frequent = items
            .iter()
            .take_while(|&&it| flist.frequency(it) >= sigma)
            .count() as u32;
        ItemOrder {
            rank_of,
            item_of: items,
            num_frequent,
        }
    }

    /// The rank of `item` (0 = most frequent).
    #[inline]
    pub fn rank(&self, item: ItemId) -> u32 {
        self.rank_of[item.index()]
    }

    /// The item at `rank`.
    #[inline]
    pub fn item(&self, rank: u32) -> ItemId {
        self.item_of[rank as usize]
    }

    /// Number of frequent items (ranks `0..num_frequent`).
    #[inline]
    pub fn num_frequent(&self) -> u32 {
        self.num_frequent
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.item_of.len()
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.item_of.is_empty()
    }

    /// Builds the rank-space [`ItemSpace`] corresponding to this order.
    pub fn item_space(&self, flist: &FList, vocab: &Vocabulary) -> ItemSpace {
        let n = self.len();
        let mut parent = vec![None; n];
        let mut frequency = vec![0u64; n];
        for rank in 0..n as u32 {
            let item = self.item(rank);
            parent[rank as usize] = vocab.parent(item).map(|p| self.rank(p));
            frequency[rank as usize] = flist.frequency(item);
        }
        ItemSpace::new(parent, frequency, self.num_frequent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1;

    #[test]
    fn fig2_flist_frequencies() {
        let (vocab, db) = fig1();
        let flist = FList::compute(&db, &vocab);
        let f = |name: &str| flist.frequency(vocab.lookup(name).unwrap());
        // Paper Fig. 2, σ=2: a:5, B:5, b1:4, c:3, D:2.
        assert_eq!(f("a"), 5);
        assert_eq!(f("B"), 5);
        assert_eq!(f("b1"), 4);
        assert_eq!(f("c"), 3);
        assert_eq!(f("D"), 2);
        // Infrequent items appear in exactly one sequence each.
        for name in ["e", "f", "b2", "b3", "b11", "b12", "b13", "d1", "d2"] {
            assert_eq!(f(name), 1, "item {name}");
        }
        assert_eq!(flist.num_frequent(2), 5);
    }

    #[test]
    fn order_matches_paper_a_bcap_b1_c_d() {
        let (vocab, db) = fig1();
        let flist = FList::compute(&db, &vocab);
        let order = ItemOrder::build(&flist, &vocab, 2);
        let rank = |name: &str| order.rank(vocab.lookup(name).unwrap());
        // a < B < b1 < c < D (paper Sec. 3.4). The a/B tie (both frequency 5,
        // both depth 0) is broken by insertion order, matching the paper.
        assert_eq!(rank("a"), 0);
        assert_eq!(rank("B"), 1);
        assert_eq!(rank("b1"), 2);
        assert_eq!(rank("c"), 3);
        assert_eq!(rank("D"), 4);
        assert_eq!(order.num_frequent(), 5);
        // Round-trip.
        for r in 0..order.len() as u32 {
            assert_eq!(order.rank(order.item(r)), r);
        }
    }

    #[test]
    fn parent_rank_is_always_smaller() {
        let (vocab, db) = fig1();
        let flist = FList::compute(&db, &vocab);
        let order = ItemOrder::build(&flist, &vocab, 2);
        for item in vocab.items() {
            if let Some(p) = vocab.parent(item) {
                assert!(
                    order.rank(p) < order.rank(item),
                    "parent {} must rank before child {}",
                    vocab.name(p),
                    vocab.name(item)
                );
            }
        }
    }

    #[test]
    fn item_space_mirrors_vocabulary() {
        let (vocab, db) = fig1();
        let flist = FList::compute(&db, &vocab);
        let order = ItemOrder::build(&flist, &vocab, 2);
        let space = order.item_space(&flist, &vocab);
        assert_eq!(space.len(), vocab.len());
        assert_eq!(space.num_frequent(), 5);
        // b1 (rank 2) has parent B (rank 1).
        assert_eq!(space.parent(2), Some(1));
        // Frequencies carried over.
        assert_eq!(space.frequency(0), 5);
        assert_eq!(space.frequency(4), 2);
        // Depth preserved under re-ranking.
        for item in vocab.items() {
            assert_eq!(space.depth(order.rank(item)), vocab.depth(item));
        }
    }

    #[test]
    fn from_counts_round_trips_compute() {
        let (vocab, db) = fig1();
        let flist = FList::compute(&db, &vocab);
        let rebuilt = FList::from_counts(&vocab, flist.iter()).unwrap();
        assert_eq!(flist, rebuilt);
        assert!(FList::from_counts(&vocab, [(ItemId::from_u32(999), 1)]).is_err());
    }

    #[test]
    fn ties_prefer_shallower_items() {
        // x (leaf, depth 1) and its parent p both occur in exactly the same
        // sequences, so f0(p) = f0(x); p must come first.
        let mut vb = crate::vocabulary::VocabularyBuilder::new();
        let p = vb.intern("p");
        let x = vb.child("x", p);
        let vocab = vb.finish().unwrap();
        let mut db = SequenceDatabase::new();
        db.push(&[x]);
        db.push(&[x, x]);
        let flist = FList::compute(&db, &vocab);
        assert_eq!(flist.frequency(p), 2);
        assert_eq!(flist.frequency(x), 2);
        let order = ItemOrder::build(&flist, &vocab, 1);
        assert!(order.rank(p) < order.rank(x));
    }
}
