//! The mining context: everything derived from (database, vocabulary, σ) in
//! the preprocessing phase — the generalized f-list, the total order, the
//! rank-space hierarchy, and the rank-re-encoded database.

use crate::flist::{FList, ItemOrder};
use crate::hierarchy::ItemSpace;
use crate::sequence::SequenceDatabase;
use crate::vocabulary::{ItemId, Vocabulary};

/// The rank-re-encoded database (arena layout, items are ranks).
#[derive(Debug, Clone, Default)]
pub struct RankedDatabase {
    items: Vec<u32>,
    offsets: Vec<u64>,
}

impl RankedDatabase {
    /// Creates an empty ranked database.
    pub fn new() -> Self {
        RankedDatabase {
            items: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Appends a ranked sequence.
    pub fn push(&mut self, seq: &[u32]) {
        self.items.extend_from_slice(seq);
        self.offsets.push(self.items.len() as u64);
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if there are no sequences.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th sequence.
    pub fn get(&self, idx: usize) -> &[u32] {
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.items[lo..hi]
    }

    /// Iterates over all sequences.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// Preprocessing output: f-list, order, rank-space hierarchy, ranked database.
///
/// This corresponds to the state LASH shares between its two MapReduce jobs
/// (paper Sec. 3.4, "Preprocessing").
#[derive(Debug, Clone)]
pub struct MiningContext {
    flist: FList,
    order: ItemOrder,
    space: ItemSpace,
    db: RankedDatabase,
}

impl MiningContext {
    /// Runs preprocessing sequentially: computes the generalized f-list, the
    /// total order, and re-encodes the database into rank space.
    pub fn build(db: &SequenceDatabase, vocab: &Vocabulary, sigma: u64) -> MiningContext {
        let flist = FList::compute(db, vocab);
        Self::from_flist(db, vocab, flist, sigma)
    }

    /// Builds a context from a precomputed f-list (e.g. the distributed
    /// f-list job).
    pub fn from_flist(
        db: &SequenceDatabase,
        vocab: &Vocabulary,
        flist: FList,
        sigma: u64,
    ) -> MiningContext {
        let order = ItemOrder::build(&flist, vocab, sigma);
        let space = order.item_space(&flist, vocab);
        let mut ranked = RankedDatabase::new();
        let mut buf = Vec::new();
        for seq in db.iter() {
            buf.clear();
            buf.extend(seq.iter().map(|&it| order.rank(it)));
            ranked.push(&buf);
        }
        MiningContext {
            flist,
            order,
            space,
            db: ranked,
        }
    }

    /// Builds a context from an f-list alone, without materializing a
    /// rank-re-encoded database.
    ///
    /// Used by the sharded pipelines, where sequences are streamed from
    /// external storage and ranked on the fly in the map phase; the context
    /// then only carries the f-list, the total order, and the rank-space
    /// hierarchy. [`MiningContext::ranked_db`] is empty in this mode.
    pub fn from_flist_only(vocab: &Vocabulary, flist: FList, sigma: u64) -> MiningContext {
        let order = ItemOrder::build(&flist, vocab, sigma);
        let space = order.item_space(&flist, vocab);
        MiningContext {
            flist,
            order,
            space,
            db: RankedDatabase::new(),
        }
    }

    /// The generalized f-list.
    pub fn flist(&self) -> &FList {
        &self.flist
    }

    /// The hierarchy-aware total order.
    pub fn order(&self) -> &ItemOrder {
        &self.order
    }

    /// The rank-space hierarchy.
    pub fn space(&self) -> &ItemSpace {
        &self.space
    }

    /// The rank-re-encoded database.
    pub fn ranked_db(&self) -> &RankedDatabase {
        &self.db
    }

    /// The `idx`-th ranked sequence.
    pub fn ranked_seq(&self, idx: usize) -> &[u32] {
        self.db.get(idx)
    }

    /// Decodes a rank-space pattern back into vocabulary item ids.
    pub fn decode(&self, ranks: &[u32]) -> Vec<ItemId> {
        ranks.iter().map(|&r| self.order.item(r)).collect()
    }

    /// Decodes a rank-space pattern into item names.
    pub fn decode_names(&self, ranks: &[u32], vocab: &Vocabulary) -> Vec<String> {
        ranks
            .iter()
            .map(|&r| vocab.name(self.order.item(r)).to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1;

    #[test]
    fn ranked_database_round_trips() {
        let (vocab, db) = fig1();
        let ctx = MiningContext::build(&db, &vocab, 2);
        assert_eq!(ctx.ranked_db().len(), db.len());
        for (i, seq) in db.iter().enumerate() {
            let ranked = ctx.ranked_seq(i);
            assert_eq!(ranked.len(), seq.len());
            let decoded = ctx.decode(ranked);
            assert_eq!(decoded, seq);
        }
    }

    #[test]
    fn t1_ranks_match_fig2_order() {
        let (vocab, db) = fig1();
        let ctx = MiningContext::build(&db, &vocab, 2);
        // T1 = a b1 a b1 → ranks [0, 2, 0, 2].
        assert_eq!(ctx.ranked_seq(0), &[0, 2, 0, 2]);
        let names = ctx.decode_names(ctx.ranked_seq(0), &vocab);
        assert_eq!(names, ["a", "b1", "a", "b1"]);
    }

    #[test]
    fn space_and_order_are_consistent() {
        let (vocab, db) = fig1();
        let ctx = MiningContext::build(&db, &vocab, 2);
        assert_eq!(ctx.space().num_frequent(), 5);
        assert_eq!(ctx.order().num_frequent(), 5);
        // The f-list is queryable through the context.
        let b1 = vocab.lookup("b1").unwrap();
        assert_eq!(ctx.flist().frequency(b1), 4);
    }
}
