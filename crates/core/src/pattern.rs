//! Mined pattern types.
//!
//! Miners produce patterns in rank space; [`PatternSet`] stores them with
//! deterministic (lexicographic) ordering, and [`Pattern`] is the
//! vocabulary-space view handed to users.

use std::collections::BTreeMap;

use crate::vocabulary::{ItemId, Vocabulary};

/// A frequent generalized sequence in vocabulary space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    /// The pattern's items, most general to most specific as mined.
    pub items: Vec<ItemId>,
    /// Its frequency `f_γ(S, D)`.
    pub frequency: u64,
}

/// Sorts patterns into the canonical *lexicographic* order (ascending by
/// items, which are unique across a mining result).
///
/// This is the layout order consumers that index the output require —
/// `lash-index` builds its prefix trie from a stream of lexicographically
/// ascending patterns — as opposed to the frequency-descending *report*
/// order of `LashResult::patterns`. Both orders are total and
/// deterministic, so the same corpus and parameters always produce the
/// same byte stream downstream.
pub fn sort_patterns_lexicographic(patterns: &mut [Pattern]) {
    patterns.sort_unstable_by(|a, b| a.items.cmp(&b.items));
}

impl Pattern {
    /// Renders the pattern as item names.
    pub fn to_names(&self, vocab: &Vocabulary) -> Vec<String> {
        self.items
            .iter()
            .map(|&i| vocab.name(i).to_owned())
            .collect()
    }

    /// Renders the pattern as a single space-separated string.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        self.to_names(vocab).join(" ")
    }
}

/// A set of rank-space patterns with frequencies, ordered lexicographically.
///
/// Used as the canonical comparison form in tests (all miners must produce
/// identical `PatternSet`s) and as the accumulation target of local miners.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternSet {
    map: BTreeMap<Vec<u32>, u64>,
}

impl PatternSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pattern with its frequency. Re-inserting the same pattern
    /// keeps the maximum frequency (miners must not produce duplicates; the
    /// max keeps comparisons meaningful if they do).
    pub fn insert(&mut self, items: Vec<u32>, frequency: u64) {
        let slot = self.map.entry(items).or_insert(0);
        *slot = (*slot).max(frequency);
    }

    /// The frequency of `items`, if present.
    pub fn get(&self, items: &[u32]) -> Option<u64> {
        self.map.get(items).copied()
    }

    /// True if `items` is in the set.
    pub fn contains(&self, items: &[u32]) -> bool {
        self.map.contains_key(items)
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no patterns were mined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(pattern, frequency)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], u64)> + '_ {
        self.map.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Merges another set into this one (used to combine per-partition
    /// outputs; partitions produce disjoint pattern sets).
    pub fn merge(&mut self, other: PatternSet) {
        for (k, v) in other.map {
            self.insert(k, v);
        }
    }

    /// Collects from `(pattern, frequency)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vec<u32>, u64)>) -> Self {
        let mut set = PatternSet::new();
        for (k, v) in pairs {
            set.insert(k, v);
        }
        set
    }

    /// The symmetric difference against another set, for diagnostics in tests:
    /// returns (only-in-self, only-in-other, frequency-mismatches).
    #[allow(clippy::type_complexity)]
    pub fn diff(
        &self,
        other: &PatternSet,
    ) -> (Vec<Vec<u32>>, Vec<Vec<u32>>, Vec<(Vec<u32>, u64, u64)>) {
        let mut only_self = Vec::new();
        let mut mismatched = Vec::new();
        for (k, &v) in &self.map {
            match other.map.get(k) {
                None => only_self.push(k.clone()),
                Some(&w) if w != v => mismatched.push((k.clone(), v, w)),
                _ => {}
            }
        }
        let only_other = other
            .map
            .keys()
            .filter(|k| !self.map.contains_key(*k))
            .cloned()
            .collect();
        (only_self, only_other, mismatched)
    }
}

impl FromIterator<(Vec<u32>, u64)> for PatternSet {
    fn from_iter<I: IntoIterator<Item = (Vec<u32>, u64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl IntoIterator for PatternSet {
    type Item = (Vec<u32>, u64);
    type IntoIter = std::collections::btree_map::IntoIter<Vec<u32>, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_iterate() {
        let mut s = PatternSet::new();
        s.insert(vec![1, 2], 5);
        s.insert(vec![0, 1], 7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&[1, 2]), Some(5));
        assert!(!s.contains(&[9]));
        let collected: Vec<_> = s.iter().collect();
        // Lexicographic order.
        assert_eq!(collected[0].0, &[0, 1][..]);
        assert_eq!(collected[1].0, &[1, 2][..]);
    }

    #[test]
    fn merge_is_union() {
        let a = PatternSet::from_pairs([(vec![1], 1), (vec![2], 2)]);
        let mut b = PatternSet::from_pairs([(vec![3], 3)]);
        b.merge(a);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn diff_reports_discrepancies() {
        let a = PatternSet::from_pairs([(vec![1], 1), (vec![2], 2)]);
        let b = PatternSet::from_pairs([(vec![2], 9), (vec![3], 3)]);
        let (only_a, only_b, mismatch) = a.diff(&b);
        assert_eq!(only_a, vec![vec![1]]);
        assert_eq!(only_b, vec![vec![3]]);
        assert_eq!(mismatch, vec![(vec![2], 2, 9)]);
    }

    #[test]
    fn lexicographic_sort_is_canonical() {
        let mut patterns = vec![
            Pattern {
                items: vec![crate::vocabulary::ItemId::from_u32(3)],
                frequency: 9,
            },
            Pattern {
                items: vec![
                    crate::vocabulary::ItemId::from_u32(1),
                    crate::vocabulary::ItemId::from_u32(2),
                ],
                frequency: 5,
            },
            Pattern {
                items: vec![crate::vocabulary::ItemId::from_u32(1)],
                frequency: 7,
            },
        ];
        sort_patterns_lexicographic(&mut patterns);
        let orders: Vec<Vec<u32>> = patterns
            .iter()
            .map(|p| p.items.iter().map(|i| i.as_u32()).collect())
            .collect();
        assert_eq!(orders, vec![vec![1], vec![1, 2], vec![3]]);
    }

    #[test]
    fn equal_sets_compare_equal() {
        let a = PatternSet::from_pairs([(vec![1, 2], 4), (vec![5], 1)]);
        let b = PatternSet::from_pairs([(vec![5], 1), (vec![1, 2], 4)]);
        assert_eq!(a, b);
    }
}
