//! Error types for lash-core.

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by vocabulary construction, parameter validation, and the
/// mining pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An operation referenced an item id that is not part of the vocabulary.
    UnknownItem(u32),
    /// Attempted to assign a second parent to an item (the hierarchy must be a
    /// forest; DAG support lives behind `MultiHierarchy`).
    DuplicateParent {
        /// The child that already has a parent.
        child: u32,
    },
    /// Assigning this parent would create a cycle.
    HierarchyCycle {
        /// The item at which the cycle was detected.
        item: u32,
    },
    /// Invalid mining parameters (σ must be ≥ 1 and λ ≥ 2).
    InvalidParams(&'static str),
    /// A decoding error from the wire format.
    Decode(lash_encoding::DecodeError),
    /// The MapReduce engine failed (e.g. a task exceeded its retry budget).
    Engine(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownItem(id) => write!(f, "unknown item id {id}"),
            Error::DuplicateParent { child } => {
                write!(
                    f,
                    "item {child} already has a parent; hierarchy must be a forest"
                )
            }
            Error::HierarchyCycle { item } => {
                write!(
                    f,
                    "assigning this parent would create a cycle at item {item}"
                )
            }
            Error::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            Error::Decode(e) => write!(f, "decode error: {e}"),
            Error::Engine(msg) => write!(f, "mapreduce engine error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lash_encoding::DecodeError> for Error {
    fn from(e: lash_encoding::DecodeError) -> Self {
        Error::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::UnknownItem(7).to_string().contains('7'));
        assert!(Error::DuplicateParent { child: 3 }
            .to_string()
            .contains("forest"));
        assert!(Error::HierarchyCycle { item: 2 }
            .to_string()
            .contains("cycle"));
        assert!(Error::InvalidParams("λ").to_string().contains("invalid"));
    }

    #[test]
    fn decode_error_converts() {
        let e: Error = lash_encoding::DecodeError::UnexpectedEof.into();
        assert!(matches!(e, Error::Decode(_)));
    }
}
