//! The vocabulary: items, their names, and the forest hierarchy over them.
//!
//! Items in LASH are arranged in a hierarchy where each item has at most one
//! parent (paper Sec. 2): leaf items are most specific, root items most
//! general. Both input sequences and mined patterns may contain items from any
//! level.

use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;

/// An opaque identifier of a vocabulary item.
///
/// Ids are dense (`0..vocab.len()`) in insertion order. The mining pipeline
/// internally re-encodes items into frequency *ranks* (see
/// [`crate::flist::ItemOrder`]); `ItemId` is the stable, user-facing id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub(crate) u32);

impl ItemId {
    /// The dense index of this item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Constructs an `ItemId` from a raw index. The caller is responsible for
    /// ensuring the index is valid for the vocabulary it is used with.
    #[inline]
    pub fn from_u32(v: u32) -> Self {
        ItemId(v)
    }
}

/// Builder for [`Vocabulary`].
///
/// ```
/// use lash_core::VocabularyBuilder;
/// let mut vb = VocabularyBuilder::new();
/// let electronics = vb.intern("electronics");
/// let camera = vb.child("camera", electronics);
/// let eos70d = vb.child("Canon EOS 70D", camera);
/// let vocab = vb.finish().unwrap();
/// assert_eq!(vocab.parent(eos70d), Some(camera));
/// assert_eq!(vocab.depth(eos70d), 2);
/// ```
#[derive(Debug, Default)]
pub struct VocabularyBuilder {
    names: Vec<String>,
    index: FxHashMap<String, ItemId>,
    parent: Vec<Option<ItemId>>,
}

impl VocabularyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, inserting it as a root item if new.
    pub fn intern(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = ItemId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        self.parent.push(None);
        id
    }

    /// Interns `name` and makes it a child of `parent`.
    ///
    /// If `name` already exists and already has a different parent, the
    /// existing parent is kept and the call panics in debug builds via
    /// [`VocabularyBuilder::set_parent`]'s error. Prefer `set_parent` when the
    /// item may exist.
    pub fn child(&mut self, name: &str, parent: ItemId) -> ItemId {
        let id = self.intern(name);
        self.set_parent(id, parent)
            .expect("child(): item already has a conflicting parent or would form a cycle");
        id
    }

    /// Sets `parent` as the parent of `child`.
    ///
    /// Errors if `child` already has a *different* parent (the hierarchy must
    /// be a forest) or if the assignment would create a cycle. Setting the
    /// same parent twice is a no-op.
    pub fn set_parent(&mut self, child: ItemId, parent: ItemId) -> Result<()> {
        if child.index() >= self.names.len() {
            return Err(Error::UnknownItem(child.0));
        }
        if parent.index() >= self.names.len() {
            return Err(Error::UnknownItem(parent.0));
        }
        match self.parent[child.index()] {
            Some(existing) if existing == parent => return Ok(()),
            Some(_) => return Err(Error::DuplicateParent { child: child.0 }),
            None => {}
        }
        // Walk up from `parent`; if we reach `child`, a cycle would form.
        let mut cursor = Some(parent);
        while let Some(p) = cursor {
            if p == child {
                return Err(Error::HierarchyCycle { item: child.0 });
            }
            cursor = self.parent[p.index()];
        }
        self.parent[child.index()] = Some(parent);
        Ok(())
    }

    /// Number of items interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no items have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finalizes the vocabulary, computing depths, children, and ancestor
    /// chains.
    pub fn finish(self) -> Result<Vocabulary> {
        let n = self.names.len();
        let mut children: Vec<Vec<ItemId>> = vec![Vec::new(); n];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(ItemId(i as u32));
            }
        }
        // Depths via memoized walk-up (forest is acyclic by construction).
        let mut depth = vec![u32::MAX; n];
        for i in 0..n {
            if depth[i] != u32::MAX {
                continue;
            }
            let mut chain = Vec::new();
            let mut cursor = ItemId(i as u32);
            loop {
                if depth[cursor.index()] != u32::MAX {
                    break;
                }
                chain.push(cursor);
                match self.parent[cursor.index()] {
                    Some(p) => cursor = p,
                    None => break,
                }
            }
            let base = if depth[cursor.index()] != u32::MAX {
                depth[cursor.index()] + 1
            } else {
                0
            };
            for (step, &it) in chain.iter().rev().enumerate() {
                depth[it.index()] = base + step as u32;
            }
        }
        // Flattened ancestor chains (self first, then parent, …, root).
        let mut chain_offsets = Vec::with_capacity(n + 1);
        let mut chains = Vec::new();
        chain_offsets.push(0u32);
        for i in 0..n {
            let mut cursor = Some(ItemId(i as u32));
            while let Some(c) = cursor {
                chains.push(c);
                cursor = self.parent[c.index()];
            }
            chain_offsets.push(chains.len() as u32);
        }
        Ok(Vocabulary {
            names: self.names,
            index: self.index,
            parent: self.parent,
            children,
            depth,
            chains,
            chain_offsets,
        })
    }
}

/// An immutable vocabulary: item names plus the forest hierarchy.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    names: Vec<String>,
    index: FxHashMap<String, ItemId>,
    parent: Vec<Option<ItemId>>,
    children: Vec<Vec<ItemId>>,
    depth: Vec<u32>,
    /// Flattened ancestor chains: for item `i`,
    /// `chains[chain_offsets[i]..chain_offsets[i+1]]` is `[i, parent(i), …, root]`.
    chains: Vec<ItemId>,
    chain_offsets: Vec<u32>,
}

impl Vocabulary {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of `item`.
    pub fn name(&self, item: ItemId) -> &str {
        &self.names[item.index()]
    }

    /// Looks up an item by name.
    pub fn lookup(&self, name: &str) -> Option<ItemId> {
        self.index.get(name).copied()
    }

    /// The parent of `item`, or `None` for root items.
    pub fn parent(&self, item: ItemId) -> Option<ItemId> {
        self.parent[item.index()]
    }

    /// The children of `item`.
    pub fn children(&self, item: ItemId) -> &[ItemId] {
        &self.children[item.index()]
    }

    /// Depth of `item` in its tree (roots have depth 0).
    pub fn depth(&self, item: ItemId) -> u32 {
        self.depth[item.index()]
    }

    /// The ancestor chain of `item`, starting with `item` itself and ending at
    /// its root: `[item, parent, grandparent, …, root]`.
    pub fn chain(&self, item: ItemId) -> &[ItemId] {
        let lo = self.chain_offsets[item.index()] as usize;
        let hi = self.chain_offsets[item.index() + 1] as usize;
        &self.chains[lo..hi]
    }

    /// The ancestor chain of `item`, with the item id checked against the
    /// vocabulary first: ids outside `0..len()` surface as
    /// [`Error::UnknownItem`] instead of a panic.
    ///
    /// This is the entry point for query-time ancestor expansion (the
    /// pattern index resolves queries phrased in leaf items by expanding
    /// every query item to its ancestors), where item ids arrive from
    /// untrusted requests rather than from this vocabulary.
    pub fn try_chain(&self, item: ItemId) -> Result<&[ItemId]> {
        if item.index() >= self.names.len() {
            return Err(Error::UnknownItem(item.as_u32()));
        }
        Ok(self.chain(item))
    }

    /// True if `u →* v`: `u` equals `v` or `v` is an ancestor of `u`
    /// (i.e. `u` generalizes to `v`).
    pub fn generalizes_to(&self, u: ItemId, v: ItemId) -> bool {
        let mut cursor = Some(u);
        while let Some(c) = cursor {
            if c == v {
                return true;
            }
            cursor = self.parent[c.index()];
        }
        false
    }

    /// Iterates over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.names.len() as u32).map(ItemId)
    }

    /// Maximum depth over all items (0 for a flat vocabulary). The paper's δ.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// A copy of this vocabulary with all parent links removed — the same
    /// items and ids, but no generalization. Used for flat mining (MG-FSM
    /// mode, paper Sec. 6.3).
    pub fn without_hierarchy(&self) -> Vocabulary {
        let mut vb = VocabularyBuilder::new();
        for item in self.items() {
            vb.intern(self.name(item));
        }
        vb.finish().expect("flat vocabulary is always valid")
    }

    /// Appends the compact binary encoding of this vocabulary and its
    /// hierarchy to `buf`: item count, the names in intern order
    /// (varint-length-prefixed UTF-8), then `parent + 1` per item with 0
    /// meaning "root".
    ///
    /// This is the persistence layout both `lash-store` manifests and
    /// `lash-index` manifests embed — one codec, so the wire contract
    /// cannot drift between the crates that store vocabularies.
    pub fn encode_bytes(&self, buf: &mut Vec<u8>) {
        lash_encoding::encode_u32(self.len() as u32, buf);
        for item in self.items() {
            let name = self.name(item).as_bytes();
            lash_encoding::encode_u32(name.len() as u32, buf);
            buf.extend_from_slice(name);
        }
        for item in self.items() {
            lash_encoding::encode_u32(self.parent(item).map_or(0, |p| p.as_u32() + 1), buf);
        }
    }

    /// Decodes a payload produced by [`Vocabulary::encode_bytes`],
    /// preserving item ids (intern order). Corrupt payloads surface as
    /// typed errors — truncation, over-long names, invalid UTF-8,
    /// duplicate names, out-of-range parents, trailing bytes, and
    /// hierarchy violations are all rejected.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Vocabulary> {
        use lash_encoding::DecodeError;
        let (n, consumed) = lash_encoding::decode_u32(bytes)?;
        let mut pos = consumed;
        let mut builder = VocabularyBuilder::new();
        let mut ids = Vec::with_capacity((n as usize).min(bytes.len()));
        for _ in 0..n {
            let (len, consumed) = lash_encoding::decode_u32(&bytes[pos..])?;
            pos += consumed;
            let end = pos + len as usize;
            if end > bytes.len() {
                return Err(DecodeError::Corrupt("vocabulary name overruns payload").into());
            }
            let name = std::str::from_utf8(&bytes[pos..end])
                .map_err(|_| DecodeError::Corrupt("vocabulary name is not UTF-8"))?;
            pos = end;
            let before = builder.len();
            let id = builder.intern(name);
            if builder.len() == before {
                return Err(DecodeError::Corrupt("duplicate vocabulary name").into());
            }
            ids.push(id);
        }
        let mut r = lash_encoding::varint::VarintReader::new(&bytes[pos..]);
        for &child in &ids {
            let parent = r.read_u32()?;
            if parent > 0 {
                let parent = ItemId::from_u32(parent - 1);
                if parent.index() >= ids.len() {
                    return Err(DecodeError::Corrupt("vocabulary parent id out of range").into());
                }
                builder.set_parent(child, parent)?;
            }
        }
        if !r.is_empty() {
            return Err(DecodeError::Corrupt("trailing vocabulary bytes").into());
        }
        builder.finish()
    }

    /// Summary statistics matching the paper's Table 2 columns.
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        let total = self.len();
        let mut leaves = 0usize;
        let mut roots = 0usize;
        let mut fanout_sum = 0usize;
        let mut fanout_nodes = 0usize;
        let mut max_fanout = 0usize;
        for i in 0..total {
            if self.children[i].is_empty() {
                leaves += 1;
            } else {
                fanout_sum += self.children[i].len();
                fanout_nodes += 1;
                max_fanout = max_fanout.max(self.children[i].len());
            }
            if self.parent[i].is_none() {
                roots += 1;
            }
        }
        // Isolated items (no parent, no children) are both roots and leaves;
        // add them back so the set identity holds.
        let isolated = self
            .items()
            .filter(|&i| self.parent[i.index()].is_none() && self.children[i.index()].is_empty())
            .count();
        let intermediate = total + isolated - leaves - roots;
        HierarchyStats {
            total_items: total,
            leaf_items: leaves,
            root_items: roots,
            intermediate_items: intermediate,
            levels: self.max_depth() as usize + 1,
            avg_fanout: if fanout_nodes == 0 {
                0.0
            } else {
                fanout_sum as f64 / fanout_nodes as f64
            },
            max_fanout,
        }
    }
}

/// Table 2-style hierarchy characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyStats {
    /// Total number of items in the vocabulary.
    pub total_items: usize,
    /// Items without children (most specific).
    pub leaf_items: usize,
    /// Items without a parent (most general).
    pub root_items: usize,
    /// Items that are neither (isolated items — both root and leaf — are
    /// counted in both of the above and therefore excluded here).
    pub intermediate_items: usize,
    /// Number of hierarchy levels (max depth + 1).
    pub levels: usize,
    /// Average number of children over items that have children.
    pub avg_fanout: f64,
    /// Maximum number of children of any item.
    pub max_fanout: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Fig. 1(b) vocabulary:
    /// roots a, B, c, D, e, f; B -> {b1, b2, b3}; b1 -> {b11, b12, b13};
    /// D -> {d1, d2}.
    pub(crate) fn fig1_vocabulary() -> (Vocabulary, Vec<ItemId>) {
        let mut vb = VocabularyBuilder::new();
        let a = vb.intern("a");
        let b_cap = vb.intern("B");
        let c = vb.intern("c");
        let d_cap = vb.intern("D");
        let b1 = vb.child("b1", b_cap);
        let b2 = vb.child("b2", b_cap);
        let b3 = vb.child("b3", b_cap);
        let b11 = vb.child("b11", b1);
        let b12 = vb.child("b12", b1);
        let b13 = vb.child("b13", b1);
        let d1 = vb.child("d1", d_cap);
        let d2 = vb.child("d2", d_cap);
        let e = vb.intern("e");
        let f = vb.intern("f");
        let vocab = vb.finish().unwrap();
        (
            vocab,
            vec![a, b_cap, c, d_cap, b1, b2, b3, b11, b12, b13, d1, d2, e, f],
        )
    }

    #[test]
    fn builds_fig1_hierarchy() {
        let (vocab, ids) = fig1_vocabulary();
        let [a, b_cap, _c, d_cap, b1, _b2, _b3, b11, ..] = ids[..] else {
            panic!("expected ids");
        };
        assert_eq!(vocab.len(), 14);
        assert_eq!(vocab.parent(b11), Some(b1));
        assert_eq!(vocab.parent(b1), Some(b_cap));
        assert_eq!(vocab.parent(b_cap), None);
        assert_eq!(vocab.depth(b11), 2);
        assert_eq!(vocab.depth(b1), 1);
        assert_eq!(vocab.depth(a), 0);
        assert_eq!(vocab.children(d_cap).len(), 2);
        assert_eq!(vocab.max_depth(), 2);
    }

    #[test]
    fn generalizes_to_follows_transitive_closure() {
        let (vocab, ids) = fig1_vocabulary();
        let [a, b_cap, _c, _d, b1, _b2, b3, b11, ..] = ids[..] else {
            panic!()
        };
        // b11 → b1 → B (paper: b11 →* B).
        assert!(vocab.generalizes_to(b11, b1));
        assert!(vocab.generalizes_to(b11, b_cap));
        assert!(vocab.generalizes_to(b11, b11)); // reflexive
        assert!(!vocab.generalizes_to(b_cap, b11)); // not symmetric
        assert!(!vocab.generalizes_to(b3, b1)); // siblings' subtrees unrelated
        assert!(!vocab.generalizes_to(a, b_cap));
    }

    #[test]
    fn chain_lists_self_then_ancestors() {
        let (vocab, ids) = fig1_vocabulary();
        let [_a, b_cap, _c, _d, b1, _b2, _b3, b11, ..] = ids[..] else {
            panic!()
        };
        assert_eq!(vocab.chain(b11), &[b11, b1, b_cap]);
        assert_eq!(vocab.chain(b_cap), &[b_cap]);
    }

    #[test]
    fn binary_codec_round_trips_and_rejects_garbage() {
        let (vocab, _) = fig1_vocabulary();
        let mut buf = Vec::new();
        vocab.encode_bytes(&mut buf);
        let back = Vocabulary::decode_bytes(&buf).unwrap();
        assert_eq!(back.len(), vocab.len());
        for item in vocab.items() {
            assert_eq!(back.name(item), vocab.name(item));
            assert_eq!(back.parent(item), vocab.parent(item));
        }
        // Truncations error, never panic.
        for cut in 0..buf.len() {
            assert!(Vocabulary::decode_bytes(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn try_chain_rejects_out_of_vocabulary_ids() {
        let (vocab, ids) = fig1_vocabulary();
        assert_eq!(vocab.try_chain(ids[7]).unwrap(), vocab.chain(ids[7]));
        let bogus = ItemId::from_u32(vocab.len() as u32);
        assert_eq!(
            vocab.try_chain(bogus),
            Err(Error::UnknownItem(bogus.as_u32()))
        );
        assert_eq!(
            vocab.try_chain(ItemId::from_u32(u32::MAX)),
            Err(Error::UnknownItem(u32::MAX))
        );
    }

    #[test]
    fn rejects_second_parent() {
        let mut vb = VocabularyBuilder::new();
        let x = vb.intern("x");
        let y = vb.intern("y");
        let z = vb.intern("z");
        vb.set_parent(z, x).unwrap();
        assert_eq!(
            vb.set_parent(z, y),
            Err(Error::DuplicateParent { child: z.0 })
        );
        // Same parent twice is fine.
        vb.set_parent(z, x).unwrap();
    }

    #[test]
    fn rejects_cycles() {
        let mut vb = VocabularyBuilder::new();
        let x = vb.intern("x");
        let y = vb.intern("y");
        let z = vb.intern("z");
        vb.set_parent(y, x).unwrap();
        vb.set_parent(z, y).unwrap();
        assert_eq!(
            vb.set_parent(x, z),
            Err(Error::HierarchyCycle { item: x.0 })
        );
        assert_eq!(
            vb.set_parent(x, x),
            Err(Error::HierarchyCycle { item: x.0 })
        );
    }

    #[test]
    fn rejects_unknown_items() {
        let mut vb = VocabularyBuilder::new();
        let x = vb.intern("x");
        assert_eq!(vb.set_parent(ItemId(9), x), Err(Error::UnknownItem(9)));
        assert_eq!(vb.set_parent(x, ItemId(9)), Err(Error::UnknownItem(9)));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut vb = VocabularyBuilder::new();
        let x1 = vb.intern("x");
        let x2 = vb.intern("x");
        assert_eq!(x1, x2);
        assert_eq!(vb.len(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let (vocab, ids) = fig1_vocabulary();
        assert_eq!(vocab.lookup("b11"), Some(ids[7]));
        assert_eq!(vocab.lookup("nope"), None);
        assert_eq!(vocab.name(ids[7]), "b11");
    }

    #[test]
    fn hierarchy_stats_fig1() {
        let (vocab, _) = fig1_vocabulary();
        let s = vocab.hierarchy_stats();
        assert_eq!(s.total_items, 14);
        // Leaves: a, c, e, f, b2, b3, b11, b12, b13, d1, d2 = 11.
        assert_eq!(s.leaf_items, 11);
        // Roots: a, B, c, D, e, f = 6.
        assert_eq!(s.root_items, 6);
        // Intermediate: b1 only.
        assert_eq!(s.intermediate_items, 1);
        assert_eq!(s.levels, 3);
        // Fan-out: B has 3 children, b1 has 3, D has 2 → avg 8/3.
        assert!((s.avg_fanout - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_fanout, 3);
    }

    #[test]
    fn depths_computed_for_deep_chains() {
        let mut vb = VocabularyBuilder::new();
        let mut prev = vb.intern("level0");
        for i in 1..50 {
            prev = vb.child(&format!("level{i}"), prev);
        }
        let vocab = vb.finish().unwrap();
        assert_eq!(vocab.max_depth(), 49);
        let deepest = vocab.lookup("level49").unwrap();
        assert_eq!(vocab.chain(deepest).len(), 50);
    }
}
