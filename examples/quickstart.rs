//! Quickstart: mine the paper's running example (Fig. 1) and print every
//! frequent generalized sequence.
//!
//! Run with: `cargo run --example quickstart`

use lash::datagen::paper_example;
use lash::{GsmParams, Lash, LashConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 1 database: six sequences over a vocabulary with the
    // hierarchy B → {b1, b2, b3}, b1 → {b11, b12, b13}, D → {d1, d2}.
    let (vocab, db) = paper_example();
    println!(
        "database: {} sequences, {} items",
        db.len(),
        db.total_items()
    );

    // σ = 2 (support at least two sequences), γ = 1 (at most one gap item),
    // λ = 3 (patterns up to three items).
    let params = GsmParams::new(2, 1, 3)?;
    let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params)?;

    println!("\nfrequent generalized sequences {params}:");
    for pattern in result.patterns() {
        println!(
            "  {:<12} frequency {}",
            pattern.display(&vocab),
            pattern.frequency
        );
    }

    // The hallmark of GSM: `b1 D` is frequent although it never occurs
    // literally — T5 contains (b12, d1) and T6 contains (b13, d2), both of
    // which generalize to it.
    let b1d = result
        .patterns()
        .iter()
        .find(|p| p.display(&vocab) == "b1 D")
        .expect("b1 D is frequent");
    println!(
        "\n`b1 D` has frequency {} without occurring in the data — found via the hierarchy.",
        b1d.frequency
    );

    println!(
        "\npipeline: {} partitions, {} candidate sequences explored, {:?} total",
        result.num_partitions,
        result.miner_stats.candidates,
        result.total_time()
    );
    Ok(())
}
