//! Querying a running `lash-serve` daemon over TCP.
//!
//! Start the daemon in one terminal:
//!
//! ```text
//! cargo run --release -p lash-serve --bin lash-serve -- --addr 127.0.0.1:4815
//! ```
//!
//! then point this client at it:
//!
//! ```text
//! LASH_SERVE_ADDR=127.0.0.1:4815 cargo run --release --example daemon_client
//! ```
//!
//! The client is vocabulary-free: it discovers concrete item ids from the
//! daemon's own top-k answer and feeds them back as support and
//! hierarchy-aware queries, so it works against any corpus the daemon
//! happens to serve. It also demonstrates the typed error surface — an
//! out-of-vocabulary query comes back as a [`QueryReply::Error`] on a
//! connection that keeps working.

use std::time::Duration;

use lash::index::{Query, QueryError, QueryReply};
use lash::serve::Client;
use lash::ItemId;

fn main() -> Result<(), lash::Error> {
    let addr = std::env::var("LASH_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:4815".to_string());

    // The daemon may still be booting (mining its first index): retry the
    // connect briefly instead of failing on the first refused socket.
    let mut client = None;
    for attempt in 0..50 {
        match Client::connect(&addr) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(e) if attempt == 49 => return Err(lash::Error::Io(e)),
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let mut client = client.expect("connect loop either set the client or returned");
    println!("connected to {addr}");

    // Top-k over the whole index needs no vocabulary knowledge at all.
    let top = client.query(&Query::TopK {
        prefix: vec![],
        k: 5,
    })?;
    let QueryReply::Patterns(top) = top else {
        panic!("top-k answered {top:?}");
    };
    println!("top-{} patterns by frequency:", top.len());
    for hit in &top {
        let items: Vec<u32> = hit.items.iter().map(|i| i.as_u32()).collect();
        println!("  {items:?}  x{}", hit.frequency);
    }

    // Enumerate a slice of the index, again vocabulary-free.
    let listed = client.query(&Query::Enumerate {
        prefix: vec![],
        limit: Some(3),
    })?;
    if let QueryReply::Patterns(hits) = &listed {
        println!("first {} patterns lexicographically", hits.len());
    }

    // Feed a discovered pattern back: its exact support must round-trip,
    // and its own items always find it through the hierarchy-aware path.
    if let Some(hit) = top.first() {
        let support = client.query(&Query::Support {
            items: hit.items.clone(),
        })?;
        assert_eq!(support, QueryReply::Support(Some(hit.frequency)));
        println!("support round-trip confirmed: x{}", hit.frequency);

        let generalized = client.query(&Query::Generalized {
            items: hit.items.clone(),
        })?;
        if let QueryReply::Patterns(hits) = generalized {
            println!("{} same-length generalization(s) found", hits.len());
        }
    }

    // The typed error surface: an item id no corpus of this size has.
    let bogus = client.query(&Query::Support {
        items: vec![ItemId::from_u32(u32::MAX - 1)],
    })?;
    match bogus {
        QueryReply::Error(QueryError::UnknownItem(id)) => {
            println!("unknown item {id} correctly answered as a typed error");
        }
        other => panic!("expected a typed unknown-item error, got {other:?}"),
    }

    // And the connection still serves after the error reply.
    let again = client.query(&Query::TopK {
        prefix: vec![],
        k: 1,
    })?;
    assert!(matches!(again, QueryReply::Patterns(_)));
    println!("connection healthy after error reply; done");
    Ok(())
}
