//! Serving mined patterns: mine a corpus, lay the result out as an
//! on-disk pattern index, and answer exact-support / prefix / top-k /
//! hierarchy-aware queries concurrently from multiple threads against one
//! atomically swappable snapshot — then re-mine and swap.
//!
//! Run with: `cargo run --release --example query_service`

use std::sync::Arc;

use lash::datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash::index::{PatternIndexReader, Query, QueryReply, QueryService};
use lash::{GsmParams, ItemId, Lash, Pattern, Vocabulary};

fn main() -> Result<(), lash::Error> {
    // A synthetic NYT-like corpus with a lemma → POS hierarchy.
    let (vocab, db) = TextCorpus::generate(&TextConfig {
        sentences: 4_000,
        lemmas: 800,
        ..TextConfig::default()
    })
    .dataset(TextHierarchy::LP);
    let params = GsmParams::new(20, 1, 4)?;
    let result = Lash::default().mine(&db, &vocab, &params)?;
    let patterns = result.patterns().to_vec();
    println!(
        "mined {} patterns from {} sequences",
        patterns.len(),
        db.len()
    );

    // Build the index: the deterministic sorted mining output, laid out
    // once as a block-structured prefix trie.
    let dir = std::env::temp_dir().join(format!("lash-query-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary = lash::index::write_patterns(&dir, &vocab, &patterns)?;
    println!(
        "indexed: {} patterns, {} trie nodes, {:.1} KiB arena",
        summary.num_patterns,
        summary.num_nodes,
        summary.arena_bytes as f64 / 1024.0
    );

    // Serve it. The service is one shared handle; every thread grabs an
    // Arc snapshot and queries lock-free.
    let service = Arc::new(QueryService::new(PatternIndexReader::open(&dir)?));
    let threads = 4;
    let mut handles = Vec::new();
    for t in 0..threads {
        let service = Arc::clone(&service);
        let patterns = patterns.clone();
        handles.push(std::thread::spawn(move || {
            let snapshot = service.snapshot();
            let mut answered = 0u64;
            // Each thread takes a stripe of the pattern list and checks
            // every answer against brute force over the mined output.
            for p in patterns.iter().skip(t).step_by(threads) {
                // Exact support, through the instrumented service path (it
                // records per-query-type latency into the shared registry).
                let reply = service
                    .execute(&Query::Support {
                        items: p.items.clone(),
                    })
                    .unwrap();
                assert_eq!(reply, QueryReply::Support(Some(p.frequency)));
                // Prefix enumeration equals the brute-force filter.
                let prefix = &p.items[..1];
                let got = snapshot.enumerate(prefix, None).unwrap();
                let want = brute_enumerate(&patterns, prefix);
                assert_eq!(got, want);
                // Hierarchy-aware: the pattern's own items always find it.
                let hits = snapshot.lookup_generalized(&p.items).unwrap();
                assert!(hits
                    .iter()
                    .any(|(items, f)| items == &p.items && *f == p.frequency));
                answered += 3;
            }
            // Top-k with the pruning bound agrees with brute force.
            let got = snapshot.top_k(&[], 10).unwrap();
            assert_eq!(got, brute_top_k(&patterns, 10));
            (t, answered + 1)
        }));
    }
    for h in handles {
        let (t, answered) = h.join().expect("serving thread");
        println!("thread {t}: {answered} queries answered, all equal to brute force");
    }

    // What the registry saw: support-latency quantiles from the storm's
    // instrumented path and the queries-served counter.
    println!(
        "\nmetrics after the query storm:\n{}",
        lash::obs::global().render_text()
    );

    // A taste of the query surface itself.
    let top = service.execute(&Query::TopK {
        prefix: vec![],
        k: 3,
    })?;
    if let QueryReply::Patterns(hits) = top {
        println!("\ntop-3 patterns by frequency:");
        for hit in hits {
            println!("  {:<30} {}", display(&vocab, &hit.items), hit.frequency);
        }
    }

    // Leaf-phrased hierarchy query: take a mined generalized pattern and
    // query it through one of its leaf specializations.
    if let Some((leaf_query, generalized)) = leaf_probe(&vocab, &patterns) {
        let hits = service.execute(&Query::Generalized {
            items: leaf_query.clone(),
        })?;
        if let QueryReply::Patterns(hits) = hits {
            println!(
                "\nquery {:?} (leaf items) finds {} generalized pattern(s), e.g. {:?}",
                display(&vocab, &leaf_query),
                hits.len(),
                display(&vocab, &generalized),
            );
        }
    }

    // Re-mine with a stricter support threshold and swap the snapshot —
    // in-flight readers keep their old index, new queries see the new one.
    let strict = GsmParams::new(40, 1, 4)?;
    let restricted = Lash::default().mine(&db, &vocab, &strict)?;
    let dir2 = std::env::temp_dir().join(format!("lash-query-service-v2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir2);
    lash::index::write_patterns(&dir2, &vocab, restricted.patterns())?;
    service.swap(PatternIndexReader::open(&dir2)?);
    println!(
        "\nswapped in re-mined index: {} → {} patterns (σ {} → {})",
        patterns.len(),
        restricted.patterns().len(),
        params.sigma,
        strict.sigma
    );

    // The swap bumped `index.swaps` (and, with `LASH_OBS_JSONL` set, left
    // an `index.swap` event carrying the replaced snapshot's query count).
    println!(
        "\nmetrics after the snapshot swap:\n{}",
        lash::obs::global().render_text()
    );

    std::fs::remove_dir_all(&dir)?;
    std::fs::remove_dir_all(&dir2)?;
    Ok(())
}

fn display(vocab: &Vocabulary, items: &[ItemId]) -> String {
    items
        .iter()
        .map(|&i| vocab.name(i))
        .collect::<Vec<_>>()
        .join(" ")
}

fn brute_enumerate(patterns: &[Pattern], prefix: &[ItemId]) -> Vec<(Vec<ItemId>, u64)> {
    let mut hits: Vec<(Vec<ItemId>, u64)> = patterns
        .iter()
        .filter(|p| p.items.starts_with(prefix))
        .map(|p| (p.items.clone(), p.frequency))
        .collect();
    hits.sort();
    hits
}

fn brute_top_k(patterns: &[Pattern], k: usize) -> Vec<(Vec<ItemId>, u64)> {
    let mut hits: Vec<(Vec<ItemId>, u64)> = patterns
        .iter()
        .map(|p| (p.items.clone(), p.frequency))
        .collect();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits.truncate(k);
    hits
}

/// Finds a mined pattern containing a non-leaf item and phrases a query
/// for it in one of that item's leaf descendants.
fn leaf_probe(vocab: &Vocabulary, patterns: &[Pattern]) -> Option<(Vec<ItemId>, Vec<ItemId>)> {
    for p in patterns {
        for (pos, &item) in p.items.iter().enumerate() {
            let mut leaf = item;
            while let Some(&child) = vocab.children(leaf).first() {
                leaf = child;
            }
            if leaf != item {
                let mut query = p.items.clone();
                query[pos] = leaf;
                return Some((query, p.items.clone()));
            }
        }
    }
    None
}
