//! Generalized n-gram mining over a synthetic NYT-like corpus — the paper's
//! text-mining motivation: patterns like "the ADJ house" or
//! "PERSON lives in CITY" that never occur literally but are frequent once
//! words may generalize to lemmas and part-of-speech tags.
//!
//! Run with: `cargo run --release --example text_ngrams`

use lash::datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash::{GsmParams, Lash, LashConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A corpus with the paper's CLP hierarchy: word → case → lemma → POS.
    let config = TextConfig {
        sentences: 5_000,
        lemmas: 2_000,
        ..TextConfig::default()
    };
    let corpus = TextCorpus::generate(&config);
    let (vocab, db) = corpus.dataset(TextHierarchy::CLP);
    println!(
        "corpus: {} sentences, avg length {:.1}; vocabulary {} items, {} levels",
        db.len(),
        db.avg_len(),
        vocab.len(),
        vocab.hierarchy_stats().levels,
    );

    // n-gram mining means γ = 0: only contiguous subsequences.
    let params = GsmParams::ngram(50, 3)?;
    let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params)?;
    println!(
        "mined {} generalized n-grams {} in {:?}",
        result.patterns().len(),
        params,
        result.total_time()
    );

    // Show the most frequent n-grams that mix hierarchy levels — e.g. a
    // POS tag next to a concrete word, the "the ADJ house" shape.
    let mixed: Vec<_> = result
        .patterns()
        .iter()
        .filter(|p| {
            let names = p.to_names(&vocab);
            names.iter().any(|n| n.starts_with("POS"))
                && names.iter().any(|n| !n.starts_with("POS"))
        })
        .take(10)
        .collect();
    println!("\ntop mixed-level n-grams (word/lemma next to a POS tag):");
    for p in &mixed {
        println!("  {:<30} frequency {}", p.display(&vocab), p.frequency);
    }

    // Compare against flat n-gram mining: how many patterns does the
    // hierarchy add?
    let flat =
        lash_core::distributed::mgfsm::MgFsm::new(Default::default()).mine(&db, &vocab, &params)?;
    println!(
        "\nflat n-gram mining finds {} patterns; GSM finds {} — the hierarchy \
         surfaces {} additional generalized patterns.",
        flat.patterns().len(),
        result.patterns().len(),
        result
            .patterns()
            .len()
            .saturating_sub(flat.patterns().len())
    );
    Ok(())
}
