//! Customer-behaviour mining over synthetic product sessions — the paper's
//! market-basket motivation: "users first buy some camera, then some
//! photography book, and finally some flash", a pattern over *categories*
//! that no concrete product triple would reveal.
//!
//! Run with: `cargo run --release --example market_basket`

use lash::datagen::{ProductConfig, ProductCorpus, ProductHierarchy};
use lash::{GsmParams, Lash, LashConfig, MinerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProductConfig {
        users: 10_000,
        products: 5_000,
        ..ProductConfig::default()
    };
    let corpus = ProductCorpus::generate(&config);

    // The paper sweeps hierarchy depth h2..h8 (Fig. 5(e)); mine the same
    // sessions under two depths and compare.
    let params = GsmParams::new(25, 1, 4)?;
    for hierarchy in [ProductHierarchy::H2, ProductHierarchy::H8] {
        let (vocab, db) = corpus.dataset(hierarchy);
        let result = Lash::new(LashConfig::default().with_miner(MinerKind::PsmIndexed))
            .mine(&db, &vocab, &params)?;
        println!(
            "{}: {} sessions, {} vocabulary items → {} frequent category patterns ({:?})",
            hierarchy.name(),
            db.len(),
            vocab.len(),
            result.patterns().len(),
            result.total_time(),
        );
        // Print a few patterns made of categories only (pure generalizations).
        let category_patterns: Vec<_> = result
            .patterns()
            .iter()
            .filter(|p| p.to_names(&vocab).iter().all(|n| n.starts_with("cat")))
            .take(5)
            .collect();
        for p in category_patterns {
            println!("    {:<28} frequency {}", p.display(&vocab), p.frequency);
        }
    }

    println!(
        "\nDeeper hierarchies expose more cross-category patterns from the same \
         sessions — the effect Fig. 5(e) measures."
    );
    Ok(())
}
