//! The corpus lifecycle end-to-end: **ingest → seal generation → compact →
//! mine**. Three batches of product sessions arrive over time; each is
//! sealed as its own segment generation (no sealed byte is ever rewritten),
//! the corpus is mined between arrivals, and finally the accumulated
//! generations are compacted back into one — with the mined pattern set
//! provably identical before and after.
//!
//! Run with: `cargo run --release --example incremental_ingest`

use lash::datagen::{ProductConfig, ProductCorpus, ProductHierarchy};
use lash::store::compact::{self, CompactionConfig};
use lash::store::{CorpusReader, CorpusWriter, IncrementalWriter, Partitioning, StoreOptions};
use lash::{GsmParams, Lash, Vocabulary};

/// Names + frequencies, sorted: the storage-independent view of a result.
fn mined_patterns(
    reader: &CorpusReader,
    params: &GsmParams,
    vocab: &Vocabulary,
) -> Vec<(Vec<String>, u64)> {
    let result = reader.mine(&Lash::default(), params).expect("mine");
    let mut v: Vec<(Vec<String>, u64)> = result
        .patterns()
        .iter()
        .map(|p| (p.to_names(vocab), p.frequency))
        .collect();
    v.sort();
    v
}

fn main() -> Result<(), lash::Error> {
    let dir = std::env::temp_dir().join(format!("lash-example-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A day's worth of sessions, arriving in three batches.
    let corpus = ProductCorpus::generate(&ProductConfig {
        users: 9_000,
        products: 2_000,
        ..ProductConfig::default()
    });
    let (vocab, db) = corpus.dataset(ProductHierarchy::H4);
    let batch = db.len() / 3;
    let params = GsmParams::new(12, 1, 3)?;

    // Batch 1 creates the corpus (generation 0).
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(4));
    let mut writer = CorpusWriter::create(&dir, &vocab, opts)?;
    for i in 0..batch {
        writer.append(db.get(i))?;
    }
    writer.finish()?;
    let reader = CorpusReader::open(&dir)?;
    println!(
        "batch 1: {} sessions sealed as generation 0 → {} patterns at σ={}",
        reader.len(),
        mined_patterns(&reader, &params, &vocab).len(),
        params.sigma,
    );

    // Batches 2 and 3 are appended without touching a sealed byte: each
    // streams through an IncrementalWriter and lands as its own generation.
    for (n, range) in [(2, batch..2 * batch), (3, 2 * batch..db.len())] {
        let mut incr = IncrementalWriter::open(&dir)?;
        for i in range {
            incr.append(db.get(i))?;
        }
        let manifest = incr.finish()?;
        let reader = CorpusReader::open(&dir)?;
        println!(
            "batch {n}: corpus now {} sessions in {} generation(s) → {} patterns",
            manifest.num_sequences,
            reader.num_generations(),
            mined_patterns(&reader, &params, &vocab).len(),
        );
    }

    // Ingest grew the per-shard segment-file count; compact it back down.
    let before = CorpusReader::open(&dir)?;
    let patterns_before = mined_patterns(&before, &params, &vocab);
    let stats = compact::compact(&dir, &CompactionConfig::default().with_max_generations(1))?;
    let after = CorpusReader::open(&dir)?;
    let patterns_after = mined_patterns(&after, &params, &vocab);
    if let Some(stats) = stats {
        println!(
            "compacted {} generations → {} in {} round(s): {} sequences rewritten, \
             {} → {} blocks, {:.1} → {:.1} KiB payload",
            stats.generations_before,
            stats.generations_after,
            stats.rounds,
            stats.sequences_rewritten,
            stats.blocks_in,
            stats.blocks_out,
            stats.payload_bytes_in as f64 / 1024.0,
            stats.payload_bytes_out as f64 / 1024.0,
        );
    }

    // Compaction moves bytes, never content: the mined pattern sets are
    // identical (names *and* frequencies), not merely equal in count.
    assert_eq!(
        patterns_before, patterns_after,
        "compaction must not change mining results"
    );
    println!(
        "mined {} patterns before compaction and {} after — identical sets ✓",
        patterns_before.len(),
        patterns_after.len(),
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
