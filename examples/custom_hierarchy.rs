//! Bring your own hierarchy: build a vocabulary from domain data, mine with
//! different parameters, and inspect closed/maximal/non-trivial statistics
//! (the paper's Table 3 machinery).
//!
//! Run with: `cargo run --example custom_hierarchy`

use lash::stats::{non_trivial_count, output_stats};
use lash::{GsmParams, Lash, LashConfig, SequenceDatabase, VocabularyBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An event-log hierarchy: concrete error codes generalize to classes.
    let mut vb = VocabularyBuilder::new();
    let error = vb.intern("ERROR");
    let timeout = vb.child("timeout", error);
    let t_db = vb.child("db-timeout", timeout);
    let t_net = vb.child("net-timeout", timeout);
    let crash = vb.child("crash", error);
    let oom = vb.child("oom-crash", crash);
    let seg = vb.child("segfault", crash);
    let info = vb.intern("INFO");
    let deploy = vb.child("deploy", info);
    let restart = vb.child("restart", info);
    let vocab = vb.finish()?;

    // Sessions of log events: deploys followed by some timeout, then a
    // restart; crashes follow deploys in two machines.
    let mut db = SequenceDatabase::new();
    db.push(&[deploy, t_db, restart]);
    db.push(&[deploy, t_net, restart]);
    db.push(&[deploy, oom, restart]);
    db.push(&[deploy, seg]);
    db.push(&[restart, t_db]);
    db.push(&[deploy, t_net]);

    let params = GsmParams::new(3, 0, 3)?;
    let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params)?;

    println!("frequent generalized event patterns {params}:");
    for p in result.patterns() {
        println!("  {:<28} frequency {}", p.display(&vocab), p.frequency);
    }

    // "deploy timeout" (4×) and "deploy ERROR" (5×... within σ=3, γ=0) never
    // occur literally — only concrete error codes do.
    assert!(result
        .patterns()
        .iter()
        .any(|p| p.display(&vocab) == "deploy ERROR"));

    // Table 3-style output statistics: how much of the output is non-trivial
    // (invisible to a flat miner), closed, and maximal?
    let flat =
        lash_core::distributed::mgfsm::MgFsm::new(Default::default()).mine(&db, &vocab, &params)?;
    let gsm_items: Vec<_> = result.patterns().iter().map(|p| p.items.clone()).collect();
    let flat_items: Vec<_> = flat.patterns().iter().map(|p| p.items.clone()).collect();
    let stats = output_stats(
        &gsm_items,
        result.pattern_set(),
        &flat_items,
        result.context().space(),
        &vocab,
    );
    println!(
        "\noutput statistics: {} patterns, {:.0}% non-trivial, {:.0}% closed, {:.0}% maximal",
        stats.total, stats.non_trivial_pct, stats.closed_pct, stats.maximal_pct
    );
    println!(
        "(non-trivial means: not derivable by generalizing any flat-frequent pattern; \
         flat mining found {} patterns, so GSM added {} insights)",
        flat_items.len(),
        non_trivial_count(&gsm_items, &flat_items, &vocab)
    );
    Ok(())
}
