//! The on-disk corpus workflow: generate a synthetic AMZN-like corpus once,
//! persist it as a partitioned `lash-store` corpus, reopen it cold, and mine
//! it with PSM straight from storage — the f-list comes from block headers
//! without decoding a single sequence payload, and the partition-and-mine
//! job's map phase streams the shards in parallel.
//!
//! Run with: `cargo run --release --example on_disk_corpus`

use lash::datagen::{ProductConfig, ProductCorpus, ProductHierarchy};
use lash::store::{CorpusReader, Partitioning, StoreOptions};
use lash::{GsmParams, Lash, LashConfig, MinerKind};

fn main() -> Result<(), lash::Error> {
    let dir = std::env::temp_dir().join(format!("lash-example-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Generate a product-session corpus with an h4 category hierarchy
    //    and persist it — this is the only time the data exists in memory.
    let corpus = ProductCorpus::generate(&ProductConfig {
        users: 20_000,
        products: 4_000,
        ..ProductConfig::default()
    });
    let (vocab, db) = corpus.dataset(ProductHierarchy::H4);
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(8))
        .with_block_budget(64 * 1024);
    let manifest = lash::store::convert::write_database(&dir, &vocab, &db, opts)?;
    // Walk the corpus recursively: segment files live in generation dirs.
    let mut on_disk = 0u64;
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                on_disk += path.metadata()?.len();
            }
        }
    }
    println!(
        "persisted {} sessions / {} items into {} shards, {} blocks, {} KiB on disk",
        manifest.num_sequences,
        manifest.total_items,
        manifest.shards.len(),
        manifest.shards.iter().map(|s| s.blocks).sum::<u64>(),
        on_disk / 1024,
    );
    drop((vocab, db, corpus));

    // 2. Reopen cold: the manifest restores the vocabulary and hierarchy,
    //    no text parsing, no full scan.
    let reader = CorpusReader::open(&dir)?;
    println!(
        "reopened: {} sequences over {} items ({} hierarchy levels)",
        reader.len(),
        reader.vocabulary().len(),
        reader.vocabulary().hierarchy_stats().levels,
    );

    // 3. Preprocessing from block headers alone: the generalized f-list is
    //    assembled from the per-block G1 sketches.
    let flist = reader.flist()?.expect("corpus written with sketches");
    let sigma = 15;
    println!(
        "header-only f-list: {} frequent items at σ = {sigma}",
        flist.num_frequent(sigma),
    );

    // 4. Mine with PSM from storage. Each map task of the distributed job
    //    streams one shard — eight parallel scans feed the partitioner.
    let params = GsmParams::new(sigma, 1, 4)?;
    let result = reader.mine(
        &Lash::new(LashConfig::default().with_miner(MinerKind::PsmIndexed)),
        &params,
    )?;
    println!(
        "mined {} generalized patterns {} in {:?} ({} partitions)",
        result.patterns().len(),
        params,
        result.total_time(),
        result.num_partitions,
    );
    println!("\ntop patterns (category-level patterns never occur literally):");
    for p in result.patterns().iter().take(10) {
        println!(
            "  {:<40} frequency {}",
            p.display(reader.vocabulary()),
            p.frequency
        );
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
