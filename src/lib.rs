//! # lash
//!
//! A Rust implementation of **LASH** — *Large-Scale Sequence Mining with
//! Hierarchies* (Beedkar & Gemulla, SIGMOD 2015): generalized sequence
//! mining over item hierarchies, with item-based partitioning, w-equivalent
//! partition rewrites, and the pivot sequence miner (PSM), executed on an
//! in-process MapReduce engine.
//!
//! This crate is the facade over the workspace:
//!
//! * `lash-core` (re-exported at the root) — the mining library;
//! * [`mapreduce`] — the MapReduce substrate: an external-sort engine whose
//!   map tasks spill sorted runs to disk past a configurable threshold and
//!   whose reduce tasks k-way merge them, streaming value groups — so low-σ
//!   jobs keep running when the shuffle outgrows RAM;
//! * [`encoding`] — the wire-format codecs;
//! * [`datagen`] — deterministic synthetic corpora mirroring the paper's
//!   NYT and AMZN workloads;
//! * [`store`] — the partitioned, compressed on-disk sequence corpus built
//!   from sealed segment generations (create with [`store::CorpusWriter`],
//!   append batches with [`store::IncrementalWriter`], compact with
//!   [`store::compact`], reopen cold with [`store::CorpusReader`], mine
//!   straight from storage);
//! * [`index`] — the immutable on-disk pattern index over mined output:
//!   build with [`index::PatternIndexWriter`], open with
//!   [`index::PatternIndexReader`], and serve exact-support / prefix /
//!   top-k / hierarchy-aware queries concurrently through
//!   [`index::QueryService`] with atomic snapshot swaps after a re-mine.
//!
//! ## Quick start
//!
//! ```
//! use lash::prelude::*;
//!
//! // "Canon EOS 70D" → "camera" → "electronics".
//! let mut vb = VocabularyBuilder::new();
//! let electronics = vb.intern("electronics");
//! let camera = vb.child("camera", electronics);
//! let eos = vb.child("Canon EOS 70D", camera);
//! let coolpix = vb.child("Nikon Coolpix", camera);
//! let book = vb.child("photography book", electronics);
//! let vocab = vb.finish().unwrap();
//!
//! let mut db = SequenceDatabase::new();
//! db.push(&[eos, book]);
//! db.push(&[coolpix, book]);
//!
//! let params = GsmParams::new(2, 0, 2).unwrap();
//! let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params).unwrap();
//!
//! // "some camera, then a photography book" is frequent even though no
//! // concrete camera model repeats.
//! assert!(result
//!     .patterns()
//!     .iter()
//!     .any(|p| p.to_names(&vocab) == ["camera", "photography book"] && p.frequency == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lash_core::*;

/// The MapReduce substrate (re-export of `lash-mapreduce`).
pub mod mapreduce {
    pub use lash_mapreduce::*;
}

/// Wire-format codecs (re-export of `lash-encoding`).
pub mod encoding {
    pub use lash_encoding::*;
}

/// Synthetic datasets (re-export of `lash-datagen`).
pub mod datagen {
    pub use lash_datagen::*;
}

/// The partitioned on-disk sequence corpus (re-export of `lash-store`).
pub mod store {
    pub use lash_store::*;
}

/// The on-disk pattern index and query service (re-export of `lash-index`).
pub mod index {
    pub use lash_index::*;
}

/// Metrics and structured tracing (re-export of `lash-obs`): the global
/// [`obs::MetricsRegistry`](lash_obs::MetricsRegistry) every layer reports
/// into, readable via `lash::obs::global().render_text()`.
pub mod obs {
    pub use lash_obs::*;
}
