//! # lash
//!
//! A Rust implementation of **LASH** — *Large-Scale Sequence Mining with
//! Hierarchies* (Beedkar & Gemulla, SIGMOD 2015): generalized sequence
//! mining over item hierarchies, with item-based partitioning, w-equivalent
//! partition rewrites, and the pivot sequence miner (PSM), executed on an
//! in-process MapReduce engine.
//!
//! This crate is the facade over the workspace:
//!
//! * `lash-core` (re-exported at the root) — the mining library;
//! * [`mapreduce`] — the MapReduce substrate: an external-sort engine whose
//!   map tasks spill sorted runs to disk past a configurable threshold and
//!   whose reduce tasks k-way merge them, streaming value groups — so low-σ
//!   jobs keep running when the shuffle outgrows RAM;
//! * [`encoding`] — the wire-format codecs;
//! * [`datagen`] — deterministic synthetic corpora mirroring the paper's
//!   NYT and AMZN workloads;
//! * [`store`] — the partitioned, compressed on-disk sequence corpus built
//!   from sealed segment generations (create with [`store::CorpusWriter`],
//!   append batches with [`store::IncrementalWriter`], compact with
//!   [`store::compact`], reopen cold with [`store::CorpusReader`], mine
//!   straight from storage);
//! * [`index`] — the immutable on-disk pattern index over mined output:
//!   build with [`index::PatternIndexWriter`], open with
//!   [`index::PatternIndexReader`], and serve exact-support / prefix /
//!   top-k / hierarchy-aware queries concurrently through
//!   [`index::QueryService`] with atomic snapshot swaps after a re-mine;
//! * [`serve`] — the long-lived query daemon: a framed TCP protocol with
//!   typed error replies ([`serve::proto`]), a batching worker pool
//!   ([`serve::Server`]), a blocking client ([`serve::Client`]), and the
//!   ingest → compact → mine → index → swap refresh loop
//!   ([`serve::Lifecycle`]) that runs safely beside serving thanks to the
//!   store's generation pinning and rate-limited compaction.
//!
//! Errors from every layer unify into [`Error`] (each `From`-convertible),
//! with a stable [`Error::kind`] for callers that match on category rather
//! than display text.
//!
//! ## Quick start
//!
//! ```
//! use lash::prelude::*;
//!
//! // "Canon EOS 70D" → "camera" → "electronics".
//! let mut vb = VocabularyBuilder::new();
//! let electronics = vb.intern("electronics");
//! let camera = vb.child("camera", electronics);
//! let eos = vb.child("Canon EOS 70D", camera);
//! let coolpix = vb.child("Nikon Coolpix", camera);
//! let book = vb.child("photography book", electronics);
//! let vocab = vb.finish().unwrap();
//!
//! let mut db = SequenceDatabase::new();
//! db.push(&[eos, book]);
//! db.push(&[coolpix, book]);
//!
//! let params = GsmParams::new(2, 0, 2).unwrap();
//! let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params).unwrap();
//!
//! // "some camera, then a photography book" is frequent even though no
//! // concrete camera model repeats.
//! assert!(result
//!     .patterns()
//!     .iter()
//!     .any(|p| p.to_names(&vocab) == ["camera", "photography book"] && p.frequency == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lash_core::*;

/// The MapReduce substrate (re-export of `lash-mapreduce`).
pub mod mapreduce {
    pub use lash_mapreduce::*;
}

/// Wire-format codecs (re-export of `lash-encoding`).
pub mod encoding {
    pub use lash_encoding::*;
}

/// Synthetic datasets (re-export of `lash-datagen`).
pub mod datagen {
    pub use lash_datagen::*;
}

/// The partitioned on-disk sequence corpus (re-export of `lash-store`).
pub mod store {
    pub use lash_store::*;
}

/// The on-disk pattern index and query service (re-export of `lash-index`).
pub mod index {
    pub use lash_index::*;
}

/// Metrics and structured tracing (re-export of `lash-obs`): the global
/// [`obs::MetricsRegistry`](lash_obs::MetricsRegistry) every layer reports
/// into, readable via `lash::obs::global().render_text()`.
pub mod obs {
    pub use lash_obs::*;
}

/// The long-lived query daemon (re-export of `lash-serve`).
pub mod serve {
    pub use lash_serve::*;
}

/// The stable, coarse category of a facade [`Error`] — what a caller can
/// reasonably branch on without matching every layer's full error surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// An operating-system I/O failure (file, socket).
    Io,
    /// On-disk or on-wire data failed validation: checksums, truncation,
    /// format invariants, undecodable envelopes.
    Corrupt,
    /// Data written by a format or protocol version this build does not
    /// read.
    UnsupportedVersion,
    /// The request itself was invalid: unknown items, bad parameters,
    /// malformed queries, rejected configuration.
    InvalidInput,
    /// The mining/MapReduce engine failed (retries exhausted, shuffle or
    /// spill failures).
    Engine,
    /// Anything that fits no other category.
    Other,
}

/// The unified facade error: every layer's error converts [`From`] its own
/// type, so application code — the examples, the bench driver, anything
/// embedding several layers — can use one `Result<_, lash::Error>` and `?`
/// across store, index, engine, serve, and core calls alike.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A `lash-core` mining/hierarchy error.
    Core(lash_core::error::Error),
    /// A `lash-store` corpus error.
    Store(lash_store::StoreError),
    /// A `lash-index` pattern-index error.
    Index(lash_index::IndexError),
    /// A `lash-mapreduce` engine error.
    Engine(lash_mapreduce::EngineError),
    /// A `lash-serve` daemon error.
    Serve(lash_serve::ServeError),
    /// A typed query failure from the daemon protocol.
    Query(lash_index::QueryError),
    /// A bare I/O error from application code.
    Io(std::io::Error),
}

impl Error {
    /// The error's stable category. Unlike the [`std::fmt::Display`] text,
    /// which may be reworded, kinds only ever grow.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Core(e) => core_kind(e),
            Error::Store(e) => store_kind(e),
            Error::Index(e) => index_kind(e),
            Error::Engine(_) => ErrorKind::Engine,
            Error::Serve(e) => match e {
                lash_serve::ServeError::Io(_) => ErrorKind::Io,
                lash_serve::ServeError::InvalidConfig(_) => ErrorKind::InvalidInput,
                lash_serve::ServeError::Store(s) => store_kind(s),
                lash_serve::ServeError::Index(i) => index_kind(i),
                lash_serve::ServeError::Mine(m) => core_kind(m),
            },
            Error::Query(e) => match e {
                lash_index::QueryError::UnknownItem(_) | lash_index::QueryError::Malformed(_) => {
                    ErrorKind::InvalidInput
                }
                lash_index::QueryError::UnsupportedVersion { .. } => ErrorKind::UnsupportedVersion,
                lash_index::QueryError::Internal(_) => ErrorKind::Other,
            },
            Error::Io(_) => ErrorKind::Io,
        }
    }
}

fn core_kind(e: &lash_core::error::Error) -> ErrorKind {
    match e {
        lash_core::error::Error::Decode(_) => ErrorKind::Corrupt,
        lash_core::error::Error::Engine(_) => ErrorKind::Engine,
        _ => ErrorKind::InvalidInput,
    }
}

fn store_kind(e: &lash_store::StoreError) -> ErrorKind {
    match e {
        lash_store::StoreError::Io(_) => ErrorKind::Io,
        lash_store::StoreError::Corrupt(_) | lash_store::StoreError::Decode(_) => {
            ErrorKind::Corrupt
        }
        lash_store::StoreError::UnsupportedVersion { .. } => ErrorKind::UnsupportedVersion,
        _ => ErrorKind::InvalidInput,
    }
}

fn index_kind(e: &lash_index::IndexError) -> ErrorKind {
    match e {
        lash_index::IndexError::Io(_) => ErrorKind::Io,
        lash_index::IndexError::Corrupt(_) | lash_index::IndexError::Decode(_) => {
            ErrorKind::Corrupt
        }
        lash_index::IndexError::UnsupportedVersion { .. } => ErrorKind::UnsupportedVersion,
        _ => ErrorKind::InvalidInput,
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "{e}"),
            Error::Index(e) => write!(f, "{e}"),
            Error::Engine(e) => write!(f, "{e}"),
            Error::Serve(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Index(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<lash_core::error::Error> for Error {
    fn from(e: lash_core::error::Error) -> Self {
        Error::Core(e)
    }
}

impl From<lash_store::StoreError> for Error {
    fn from(e: lash_store::StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<lash_index::IndexError> for Error {
    fn from(e: lash_index::IndexError) -> Self {
        Error::Index(e)
    }
}

impl From<lash_mapreduce::EngineError> for Error {
    fn from(e: lash_mapreduce::EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<lash_serve::ServeError> for Error {
    fn from(e: lash_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<lash_index::QueryError> for Error {
    fn from(e: lash_index::QueryError) -> Self {
        Error::Query(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
